package pdn

import (
	"fmt"
)

// BatchTransient advances B independent load lanes in lockstep through
// one shared circuit. Every lane sees the same topology and element
// values — the companion and DC matrices are stamped and LU-factored
// exactly once — but each lane evaluates the circuit's loads against
// its own state (selected through the onLane hook) and may pin fixed
// supplies to lane-specific potentials. The per-step solve becomes a
// multi-RHS forward/back substitution over a contiguous n×B block, and
// the step-plan walk and companion updates are amortized across all
// lanes, so a width-8 batch costs far less than 8 single-lane engines.
//
// Lane state is laid out lane-innermost (row i, lane l at i*B+l): the
// hot loops stream contiguous lane-width runs and carry B independent
// floating-point dependency chains where Transient carries one.
//
// Every lane is bit-identical to a single-lane Transient driven by the
// same loads: per lane, each step performs the same floating-point
// operations in the same order — batching interleaves work across
// lanes, never reorders it within one.
type BatchTransient struct {
	c     *Circuit
	dt    float64
	lanes int
	lu    *realLU
	dcLU  *realLU // DC operating-point factorization (inductors shorted)
	idx   []int   // NodeID -> unknown index or -1
	n     int     // number of unknowns

	// idxP maps NodeID -> permuted RHS slot (invPerm of idx) or -1, and
	// unkNode[i] is the node whose solution the in-place solve leaves at
	// slot i — together they let the step walk assemble the right-hand
	// sides directly in permuted row order and scatter the solutions
	// without touching fixed nodes (see Transient).
	idxP    []int
	unkNode []int32

	// onLane selects a lane before its loads are evaluated, so the
	// owner can swap the workload state the load closures read.
	onLane func(lane int)

	// Per-element companion state; the lane dimension is innermost.
	// vab/ibr hold the DC operating point only: past the first step,
	// branch state lives in hist and BranchCurrent derives currents on
	// demand from the node potentials (see Transient).
	geq  []float64 // companion conductance per element (shared by lanes)
	vab  []float64 // branch voltage per element x lane (DC point)
	ibr  []float64 // branch current per element x lane (a -> b, DC point)
	hist []float64 // companion history source per element x lane
	pots []float64 // node potentials per node x lane

	// fixedPot holds the per-lane potential of every fixed node
	// (node x lane), seeded from the circuit at construction. It is
	// engine-owned state: retune supplies with SetLaneFixed, not
	// Circuit.FixNode — later FixNode calls are not observed here.
	fixedPot []float64

	plan   []stepElem // per-step RHS contributors, in element order
	planFA []float64  // fixed-node contributions per plan entry x lane
	planFB []float64

	// rhs holds the n x lanes right-hand sides, assembled directly in
	// permuted row order; the substitutions run in place in this buffer,
	// so no separate solution block exists.
	rhs []float64

	laneRHS []float64 // n-vector scratch for the per-lane DC init
	laneSol []float64

	time float64
	step int
}

// NewBatchTransient prepares a lockstep batch simulation of c with
// fixed timestep dt, starting at time zero. See NewBatchTransientAt.
func NewBatchTransient(c *Circuit, dt float64, lanes int, onLane func(lane int)) (*BatchTransient, error) {
	return NewBatchTransientAt(c, dt, 0, lanes, onLane)
}

// NewBatchTransientAt prepares a lockstep batch simulation of c with
// fixed timestep dt and the given lane count, starting at simulation
// time start. onLane (may be nil) is invoked with the lane index
// immediately before that lane's loads are evaluated — during
// construction, Reset, and every Step — so load closures shared by all
// lanes can read lane-local workload state. Each lane is initialized
// to its own DC operating point, exactly as NewTransientAt does for a
// single lane.
func NewBatchTransientAt(c *Circuit, dt, start float64, lanes int, onLane func(lane int)) (*BatchTransient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("pdn: non-positive timestep %g", dt)
	}
	if lanes < 1 {
		return nil, fmt.Errorf("pdn: batch lane count %d, want >= 1", lanes)
	}
	idx, n := c.unknowns()
	if n == 0 {
		return nil, fmt.Errorf("pdn: circuit has no unknown nodes")
	}
	t := &BatchTransient{
		c: c, dt: dt, lanes: lanes, idx: idx, n: n, time: start,
		onLane:   onLane,
		vab:      make([]float64, len(c.elements)*lanes),
		ibr:      make([]float64, len(c.elements)*lanes),
		hist:     make([]float64, len(c.elements)*lanes),
		pots:     make([]float64, c.NumNodes()*lanes),
		fixedPot: make([]float64, c.NumNodes()*lanes),
		rhs:      make([]float64, n*lanes),
		laneRHS:  make([]float64, n),
		laneSol:  make([]float64, n),
	}
	for node, i := range idx {
		if i >= 0 {
			continue
		}
		v := c.potentialOfFixed(NodeID(node))
		for l := 0; l < lanes; l++ {
			t.fixedPot[node*lanes+l] = v
		}
	}
	geq, lu, err := stampCompanion(c, dt, idx, n)
	if err != nil {
		return nil, err
	}
	t.geq, t.lu = geq, lu
	t.idxP, t.unkNode = permutedIndex(idx, lu)
	dcLU, err := factorDCMatrix(c, idx, n)
	if err != nil {
		return nil, err
	}
	t.dcLU = dcLU
	t.buildPlan()
	if err := t.initState(); err != nil {
		return nil, err
	}
	return t, nil
}

// Lanes returns the batch width.
func (t *BatchTransient) Lanes() int { return t.lanes }

// Time returns the current simulation time in seconds.
func (t *BatchTransient) Time() float64 { return t.time }

// Dt returns the fixed timestep.
func (t *BatchTransient) Dt() float64 { return t.dt }

// SetLaneFixed pins a fixed node to a lane-specific potential. The
// node must already be fixed in the circuit — fixed-node potentials
// enter only the right-hand side, so lanes can run at different supply
// settings against the same factored matrices. The new potential takes
// effect at the next Reset (matching Circuit.FixNode, which Transient
// also observes only through Reset).
func (t *BatchTransient) SetLaneFixed(lane int, n NodeID, volts float64) error {
	t.c.checkNode(n)
	if lane < 0 || lane >= t.lanes {
		return fmt.Errorf("pdn: lane %d out of range [0,%d)", lane, t.lanes)
	}
	if _, ok := t.c.FixedVoltage(n); !ok {
		return fmt.Errorf("pdn: SetLaneFixed on %q, which is not a fixed node", t.c.NodeName(n))
	}
	t.fixedPot[int(n)*t.lanes+lane] = volts
	return nil
}

// Voltage returns the potential of node n in the given lane at the
// current time.
func (t *BatchTransient) Voltage(lane int, n NodeID) float64 {
	t.c.checkNode(n)
	return t.pots[int(n)*t.lanes+lane]
}

// LaneVoltages returns the potentials of node n for every lane, lane l
// at index l. The returned slice is a read-only view into engine state,
// valid until the next Step or Reset; it exists so per-step observers
// read a node's lanes with one bounds-checked call instead of one
// Voltage call per lane.
func (t *BatchTransient) LaneVoltages(n NodeID) []float64 {
	t.c.checkNode(n)
	return t.pots[int(n)*t.lanes : (int(n)+1)*t.lanes]
}

// BranchCurrent returns the current (a -> b) through element i in
// insertion order, for the given lane. Exported for white-box testing.
//
// Past the first step, currents are derived on demand from the node
// potentials and the cached history source — the exact expressions a
// per-step branch-state update would have stored, so readings are
// bit-identical to an engine that materialized them (and to
// Transient.BranchCurrent lane for lane). At the DC operating point
// (before the first Step, or right after Reset) the stored DC values
// are returned instead: initState computes resistor current as
// (va-vb)/R, which can differ from v*geq in the last ULP.
func (t *BatchTransient) BranchCurrent(lane, i int) float64 {
	if t.step == 0 {
		return t.ibr[i*t.lanes+lane]
	}
	e := t.c.elements[i]
	v := t.pots[int(e.a)*t.lanes+lane] - t.pots[int(e.b)*t.lanes+lane]
	switch e.kind {
	case kindCapacitor:
		return t.geq[i]*v - t.hist[i*t.lanes+lane]
	case kindInductor:
		return t.geq[i]*v + t.hist[i*t.lanes+lane]
	default: // resistor
		return v * t.geq[i]
	}
}

// Reset rewinds all lanes to the given start time and re-derives each
// lane's DC operating point from the circuit's current loads and the
// lane's fixed potentials. Neither nodal matrix is re-stamped or
// re-factored, so a batch session can retune lane supplies, swap what
// the load closures compute, and restart from here at the cost of one
// linear solve per lane.
func (t *BatchTransient) Reset(start float64) error {
	t.time = start
	t.step = 0
	t.buildPlan()
	return t.initState()
}

// buildPlan captures the per-step RHS contributions, snapshotting each
// lane's fixed-node potentials in effect now. The entry list (and so
// the accumulation order per lane) is identical to the single-lane
// plan: hasFA/hasFB depend only on topology, never on lane state.
func (t *BatchTransient) buildPlan() {
	t.plan = t.plan[:0]
	for ei, e := range t.c.elements {
		pe := stepElem{kind: e.kind, ei: ei, geq: t.geq[ei], na: int(e.a), nb: int(e.b), ia: t.idx[e.a], ib: t.idx[e.b]}
		pe.iaP, pe.ibP = t.idxP[e.a], t.idxP[e.b]
		pe.hasFA = pe.ia >= 0 && pe.ib < 0
		pe.hasFB = pe.ib >= 0 && pe.ia < 0
		if e.kind == kindResistor && !pe.hasFA && !pe.hasFB {
			continue // no history source, no fixed contribution
		}
		t.plan = append(t.plan, pe)
	}
	B := t.lanes
	if need := len(t.plan) * B; cap(t.planFA) < need {
		t.planFA = make([]float64, need)
		t.planFB = make([]float64, need)
	} else {
		t.planFA = t.planFA[:need]
		t.planFB = t.planFB[:need]
	}
	for pi := range t.plan {
		pe := &t.plan[pi]
		e := t.c.elements[pe.ei]
		for l := 0; l < B; l++ {
			if pe.hasFA {
				t.planFA[pi*B+l] = pe.geq * t.fixedPot[int(e.b)*B+l]
			}
			if pe.hasFB {
				t.planFB[pi*B+l] = pe.geq * t.fixedPot[int(e.a)*B+l]
			}
		}
	}
}

// initState derives each lane's initial condition from its DC
// operating point: loads evaluated at the current simulation time (for
// that lane, via onLane) against the cached DC factorization. The
// per-lane arithmetic mirrors Transient.initState exactly.
func (t *BatchTransient) initState() error {
	c := t.c
	B := t.lanes
	for l := 0; l < B; l++ {
		rhs, sol := t.laneRHS, t.laneSol
		for i := range rhs {
			rhs[i] = 0
		}
		for _, e := range c.elements {
			ge, ok := dcConductance(e)
			if !ok {
				continue
			}
			ia, ib := t.idx[e.a], t.idx[e.b]
			if ia >= 0 && ib < 0 {
				rhs[ia] += ge * t.fixedPot[int(e.b)*B+l]
			}
			if ib >= 0 && ia < 0 {
				rhs[ib] += ge * t.fixedPot[int(e.a)*B+l]
			}
		}
		if t.onLane != nil {
			t.onLane(l)
		}
		for _, ld := range c.loads {
			if i := t.idx[ld.Node]; i >= 0 {
				rhs[i] -= ld.Current(t.time)
			}
		}
		t.dcLU.solveInto(sol, rhs)
		for node, i := range t.idx {
			if i >= 0 {
				t.pots[node*B+l] = sol[i]
			} else {
				t.pots[node*B+l] = t.fixedPot[node*B+l]
			}
		}
		// Branch states from the DC solution.
		for ei, e := range c.elements {
			va, vb := t.pots[int(e.a)*B+l], t.pots[int(e.b)*B+l]
			t.vab[ei*B+l] = va - vb
			switch e.kind {
			case kindResistor:
				t.ibr[ei*B+l] = (va - vb) / e.value
			case kindInductor:
				t.ibr[ei*B+l] = (va - vb) / dcShortOhms
				t.vab[ei*B+l] = 0 // an ideal inductor carries no DC voltage
			case kindCapacitor:
				t.ibr[ei*B+l] = 0
			}
		}
		// Seed the history sources the first Step will consume, with
		// the exact expressions the step walk uses thereafter.
		for ei, e := range c.elements {
			switch e.kind {
			case kindCapacitor:
				t.hist[ei*B+l] = t.geq[ei]*t.vab[ei*B+l] + t.ibr[ei*B+l]
			case kindInductor:
				t.hist[ei*B+l] = t.ibr[ei*B+l] + t.geq[ei]*t.vab[ei*B+l]
			}
		}
	}
	return nil
}

// Step advances every lane by one timestep. It allocates nothing.
func (t *BatchTransient) Step() error {
	switch t.lanes {
	case DefaultBatchLanes:
		return t.step8()
	case WideBatchLanes:
		return t.step16()
	}
	c := t.c
	B := t.lanes
	next := t.time + t.dt
	rhs := t.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	// History sources and fixed-node conductance contributions, from
	// the precomputed plan. Per lane this is the same element order and
	// the same arithmetic as the single-lane Step: past the first step
	// the walk rolls each reactive element's companion state forward
	// from the last solve's potentials in the same pass that feeds the
	// RHS (see Transient.Step for the derivation). RHS rows are
	// assembled at the permuted slots (iaP/ibP) so the solve can run in
	// place — the accumulation order per unknown is untouched.
	first := t.step == 0
	for pi := range t.plan {
		pe := &t.plan[pi]
		if pe.hasFA {
			fa := t.planFA[pi*B : pi*B+B : pi*B+B]
			ra := rhs[pe.iaP*B : pe.iaP*B+B]
			for l := range ra {
				ra[l] += fa[l]
			}
		}
		if pe.hasFB {
			fb := t.planFB[pi*B : pi*B+B : pi*B+B]
			rb := rhs[pe.ibP*B : pe.ibP*B+B]
			for l := range rb {
				rb[l] += fb[l]
			}
		}
		if pe.kind == kindResistor {
			continue
		}
		geq := pe.geq
		hist := t.hist[pe.ei*B : pe.ei*B+B : pe.ei*B+B]
		if !first {
			pa := t.pots[pe.na*B : pe.na*B+B : pe.na*B+B]
			pb := t.pots[pe.nb*B : pe.nb*B+B : pe.nb*B+B]
			if pe.kind == kindCapacitor {
				for l := range hist {
					gv := geq * (pa[l] - pb[l])
					hist[l] = gv + (gv - hist[l])
				}
			} else {
				for l := range hist {
					gv := geq * (pa[l] - pb[l])
					hist[l] = (gv + hist[l]) + gv
				}
			}
		}
		switch pe.kind {
		case kindCapacitor:
			// i(t+dt) = geq*v(t+dt) - hist, hist = geq*v(t) + i(t).
			// Branch current a->b contributes +hist into node a's RHS.
			switch {
			case pe.iaP >= 0 && pe.ibP >= 0:
				ra := rhs[pe.iaP*B : pe.iaP*B+B]
				rb := rhs[pe.ibP*B : pe.ibP*B+B]
				for l := range ra {
					ra[l] += hist[l]
					rb[l] -= hist[l]
				}
			case pe.iaP >= 0:
				ra := rhs[pe.iaP*B : pe.iaP*B+B]
				for l := range ra {
					ra[l] += hist[l]
				}
			case pe.ibP >= 0:
				rb := rhs[pe.ibP*B : pe.ibP*B+B]
				for l := range rb {
					rb[l] -= hist[l]
				}
			}
		case kindInductor:
			// i(t+dt) = geq*v(t+dt) + hist, hist = i(t) + geq*v(t).
			switch {
			case pe.iaP >= 0 && pe.ibP >= 0:
				ra := rhs[pe.iaP*B : pe.iaP*B+B]
				rb := rhs[pe.ibP*B : pe.ibP*B+B]
				for l := range ra {
					ra[l] -= hist[l]
					rb[l] += hist[l]
				}
			case pe.iaP >= 0:
				ra := rhs[pe.iaP*B : pe.iaP*B+B]
				for l := range ra {
					ra[l] -= hist[l]
				}
			case pe.ibP >= 0:
				rb := rhs[pe.ibP*B : pe.ibP*B+B]
				for l := range rb {
					rb[l] += hist[l]
				}
			}
		}
	}
	// Loads evaluated at the new time, lane by lane (backward-looking
	// sources keep the trapezoidal solve linear).
	for l := 0; l < B; l++ {
		if t.onLane != nil {
			t.onLane(l)
		}
		for _, ld := range c.loads {
			if i := t.idxP[ld.Node]; i >= 0 {
				rhs[i*B+l] -= ld.Current(next)
			}
		}
	}
	t.lu.solveBatchInPlace(rhs, B)
	// Scatter the solved unknowns, checking for divergence in the same
	// pass (v-v is 0 for every finite v and NaN for NaN and ±Inf).
	// Fixed-node potentials are not rewritten here: they change only
	// through Reset, which re-scatters them via initState. On
	// divergence the engine state is abandoned with the error.
	bad := -1
	for i, node := range t.unkNode {
		po := t.pots[int(node)*B : int(node)*B+B]
		so := rhs[i*B : i*B+B : i*B+B]
		for l := range po {
			v := so[l]
			if v-v != 0 {
				bad = l
			}
			po[l] = v
		}
	}
	if bad >= 0 {
		return fmt.Errorf("pdn: integration diverged at t=%g (lane %d)", next, bad)
	}
	t.time = next
	t.step++
	return nil
}

// step8 is Step specialized to the default 8-lane batch: every inner
// loop runs over fixed-size array pointers, so the compiler drops the
// slice-header bookkeeping and bounds checks of the generic path and
// unrolls the 8-wide lane updates. Per lane the arithmetic — order and
// operations — is exactly the generic Step's, so lanes stay
// bit-identical to single-lane engines at any width.
func (t *BatchTransient) step8() error {
	const B = DefaultBatchLanes
	c := t.c
	next := t.time + t.dt
	rhs := t.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	first := t.step == 0
	for pi := range t.plan {
		pe := &t.plan[pi]
		if pe.hasFA {
			fa := (*[B]float64)(t.planFA[pi*B : pi*B+B])
			ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
			for l := 0; l < B; l++ {
				ra[l] += fa[l]
			}
		}
		if pe.hasFB {
			fb := (*[B]float64)(t.planFB[pi*B : pi*B+B])
			rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
			for l := 0; l < B; l++ {
				rb[l] += fb[l]
			}
		}
		if pe.kind == kindResistor {
			continue
		}
		geq := pe.geq
		hist := (*[B]float64)(t.hist[pe.ei*B : pe.ei*B+B])
		if !first {
			pa := (*[B]float64)(t.pots[pe.na*B : pe.na*B+B])
			pb := (*[B]float64)(t.pots[pe.nb*B : pe.nb*B+B])
			if pe.kind == kindCapacitor {
				for l := 0; l < B; l++ {
					gv := geq * (pa[l] - pb[l])
					hist[l] = gv + (gv - hist[l])
				}
			} else {
				for l := 0; l < B; l++ {
					gv := geq * (pa[l] - pb[l])
					hist[l] = (gv + hist[l]) + gv
				}
			}
		}
		switch pe.kind {
		case kindCapacitor:
			// i(t+dt) = geq*v(t+dt) - hist, hist = geq*v(t) + i(t).
			switch {
			case pe.iaP >= 0 && pe.ibP >= 0:
				ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
				rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
				for l := 0; l < B; l++ {
					ra[l] += hist[l]
					rb[l] -= hist[l]
				}
			case pe.iaP >= 0:
				ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
				for l := 0; l < B; l++ {
					ra[l] += hist[l]
				}
			case pe.ibP >= 0:
				rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
				for l := 0; l < B; l++ {
					rb[l] -= hist[l]
				}
			}
		case kindInductor:
			// i(t+dt) = geq*v(t+dt) + hist, hist = i(t) + geq*v(t).
			switch {
			case pe.iaP >= 0 && pe.ibP >= 0:
				ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
				rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
				for l := 0; l < B; l++ {
					ra[l] -= hist[l]
					rb[l] += hist[l]
				}
			case pe.iaP >= 0:
				ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
				for l := 0; l < B; l++ {
					ra[l] -= hist[l]
				}
			case pe.ibP >= 0:
				rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
				for l := 0; l < B; l++ {
					rb[l] += hist[l]
				}
			}
		}
	}
	// Loads evaluated at the new time, lane by lane (backward-looking
	// sources keep the trapezoidal solve linear).
	for l := 0; l < B; l++ {
		if t.onLane != nil {
			t.onLane(l)
		}
		for _, ld := range c.loads {
			if i := t.idxP[ld.Node]; i >= 0 {
				rhs[i*B+l] -= ld.Current(next)
			}
		}
	}
	t.lu.solveBatch8InPlace(rhs)
	// Scatter the solved unknowns (element-wise: a 64-byte array
	// assignment lowers to a runtime.memmove call), checking for
	// divergence in the same pass — v-v is 0 for every finite v and NaN
	// for NaN and ±Inf. Fixed-node potentials are not rewritten here:
	// they change only through Reset, which re-scatters them via
	// initState. On divergence the engine state is abandoned with the
	// error.
	bad := -1
	for i, node := range t.unkNode {
		po := (*[B]float64)(t.pots[int(node)*B : int(node)*B+B])
		so := (*[B]float64)(rhs[i*B : i*B+B])
		for l := 0; l < B; l++ {
			v := so[l]
			if v-v != 0 {
				bad = l
			}
			po[l] = v
		}
	}
	if bad >= 0 {
		return fmt.Errorf("pdn: integration diverged at t=%g (lane %d)", next, bad)
	}
	t.time = next
	t.step++
	return nil
}

// step16 is step8 at the wide lane width: identical walk, sixteen-lane
// blocks. Per lane the arithmetic — order and operations — is exactly
// the generic Step's, so lanes stay bit-identical to single-lane
// engines at this width too.
func (t *BatchTransient) step16() error {
	const B = WideBatchLanes
	c := t.c
	next := t.time + t.dt
	rhs := t.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	first := t.step == 0
	for pi := range t.plan {
		pe := &t.plan[pi]
		if pe.hasFA {
			fa := (*[B]float64)(t.planFA[pi*B : pi*B+B])
			ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
			for l := 0; l < B; l++ {
				ra[l] += fa[l]
			}
		}
		if pe.hasFB {
			fb := (*[B]float64)(t.planFB[pi*B : pi*B+B])
			rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
			for l := 0; l < B; l++ {
				rb[l] += fb[l]
			}
		}
		if pe.kind == kindResistor {
			continue
		}
		geq := pe.geq
		hist := (*[B]float64)(t.hist[pe.ei*B : pe.ei*B+B])
		if !first {
			pa := (*[B]float64)(t.pots[pe.na*B : pe.na*B+B])
			pb := (*[B]float64)(t.pots[pe.nb*B : pe.nb*B+B])
			if pe.kind == kindCapacitor {
				for l := 0; l < B; l++ {
					gv := geq * (pa[l] - pb[l])
					hist[l] = gv + (gv - hist[l])
				}
			} else {
				for l := 0; l < B; l++ {
					gv := geq * (pa[l] - pb[l])
					hist[l] = (gv + hist[l]) + gv
				}
			}
		}
		switch pe.kind {
		case kindCapacitor:
			// i(t+dt) = geq*v(t+dt) - hist, hist = geq*v(t) + i(t).
			switch {
			case pe.iaP >= 0 && pe.ibP >= 0:
				ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
				rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
				for l := 0; l < B; l++ {
					ra[l] += hist[l]
					rb[l] -= hist[l]
				}
			case pe.iaP >= 0:
				ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
				for l := 0; l < B; l++ {
					ra[l] += hist[l]
				}
			case pe.ibP >= 0:
				rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
				for l := 0; l < B; l++ {
					rb[l] -= hist[l]
				}
			}
		case kindInductor:
			// i(t+dt) = geq*v(t+dt) + hist, hist = i(t) + geq*v(t).
			switch {
			case pe.iaP >= 0 && pe.ibP >= 0:
				ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
				rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
				for l := 0; l < B; l++ {
					ra[l] -= hist[l]
					rb[l] += hist[l]
				}
			case pe.iaP >= 0:
				ra := (*[B]float64)(rhs[pe.iaP*B : pe.iaP*B+B])
				for l := 0; l < B; l++ {
					ra[l] -= hist[l]
				}
			case pe.ibP >= 0:
				rb := (*[B]float64)(rhs[pe.ibP*B : pe.ibP*B+B])
				for l := 0; l < B; l++ {
					rb[l] += hist[l]
				}
			}
		}
	}
	// Loads evaluated at the new time, lane by lane (backward-looking
	// sources keep the trapezoidal solve linear).
	for l := 0; l < B; l++ {
		if t.onLane != nil {
			t.onLane(l)
		}
		for _, ld := range c.loads {
			if i := t.idxP[ld.Node]; i >= 0 {
				rhs[i*B+l] -= ld.Current(next)
			}
		}
	}
	t.lu.solveBatch16InPlace(rhs)
	// Scatter the solved unknowns, divergence-checked in the same pass;
	// fixed nodes change only through Reset (see step8).
	bad := -1
	for i, node := range t.unkNode {
		po := (*[B]float64)(t.pots[int(node)*B : int(node)*B+B])
		so := (*[B]float64)(rhs[i*B : i*B+B])
		for l := 0; l < B; l++ {
			v := so[l]
			if v-v != 0 {
				bad = l
			}
			po[l] = v
		}
	}
	if bad >= 0 {
		return fmt.Errorf("pdn: integration diverged at t=%g (lane %d)", next, bad)
	}
	t.time = next
	t.step++
	return nil
}

// LaneFootprintBytes reports the engine state one lane streams through
// per step — companion state, potentials, right-hand side, and plan
// contributions — for the width-calibration footprint gate: widths
// whose total working set outgrows cache stop paying for themselves.
func (t *BatchTransient) LaneFootprintBytes() int {
	perLane := 3*len(t.c.elements) + // vab, ibr, hist
		2*t.c.NumNodes() + // pots, fixedPot
		t.n + // rhs
		2*len(t.plan) // planFA, planFB
	return 8 * perLane
}

// RunUntil advances all lanes until the given absolute time without
// recording anything. Useful for warm-up.
func (t *BatchTransient) RunUntil(until float64) error {
	for t.time < until-t.dt/2 {
		if err := t.Step(); err != nil {
			return err
		}
	}
	return nil
}
