package pdn

import (
	"fmt"
)

// BatchTransient advances B independent load lanes in lockstep through
// one shared circuit. Every lane sees the same topology and element
// values — the companion and DC matrices are stamped and LU-factored
// exactly once — but each lane evaluates the circuit's loads against
// its own state (selected through the onLane hook) and may pin fixed
// supplies to lane-specific potentials. The per-step solve becomes a
// multi-RHS forward/back substitution over a contiguous n×B block, and
// the step-plan walk and companion updates are amortized across all
// lanes, so a width-8 batch costs far less than 8 single-lane engines.
//
// Lane state is laid out lane-innermost (row i, lane l at i*B+l): the
// hot loops stream contiguous lane-width runs and carry B independent
// floating-point dependency chains where Transient carries one.
//
// Every lane is bit-identical to a single-lane Transient driven by the
// same loads: per lane, each step performs the same floating-point
// operations in the same order — batching interleaves work across
// lanes, never reorders it within one.
type BatchTransient struct {
	c     *Circuit
	dt    float64
	lanes int
	lu    *realLU
	dcLU  *realLU // DC operating-point factorization (inductors shorted)
	idx   []int   // NodeID -> unknown index or -1
	n     int     // number of unknowns

	// onLane selects a lane before its loads are evaluated, so the
	// owner can swap the workload state the load closures read.
	onLane func(lane int)

	// Per-element companion state; the lane dimension is innermost.
	geq  []float64 // companion conductance per element (shared by lanes)
	vab  []float64 // branch voltage per element x lane
	ibr  []float64 // branch current per element x lane (a -> b)
	pots []float64 // node potentials per node x lane

	// fixedPot holds the per-lane potential of every fixed node
	// (node x lane), seeded from the circuit at construction. It is
	// engine-owned state: retune supplies with SetLaneFixed, not
	// Circuit.FixNode — later FixNode calls are not observed here.
	fixedPot []float64

	plan   []stepElem // per-step RHS contributors, in element order
	planFA []float64  // fixed-node contributions per plan entry x lane
	planFB []float64

	rhs []float64 // n x lanes right-hand sides
	sol []float64 // n x lanes solutions

	laneRHS []float64 // n-vector scratch for the per-lane DC init
	laneSol []float64

	time float64
	step int
}

// NewBatchTransient prepares a lockstep batch simulation of c with
// fixed timestep dt, starting at time zero. See NewBatchTransientAt.
func NewBatchTransient(c *Circuit, dt float64, lanes int, onLane func(lane int)) (*BatchTransient, error) {
	return NewBatchTransientAt(c, dt, 0, lanes, onLane)
}

// NewBatchTransientAt prepares a lockstep batch simulation of c with
// fixed timestep dt and the given lane count, starting at simulation
// time start. onLane (may be nil) is invoked with the lane index
// immediately before that lane's loads are evaluated — during
// construction, Reset, and every Step — so load closures shared by all
// lanes can read lane-local workload state. Each lane is initialized
// to its own DC operating point, exactly as NewTransientAt does for a
// single lane.
func NewBatchTransientAt(c *Circuit, dt, start float64, lanes int, onLane func(lane int)) (*BatchTransient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("pdn: non-positive timestep %g", dt)
	}
	if lanes < 1 {
		return nil, fmt.Errorf("pdn: batch lane count %d, want >= 1", lanes)
	}
	idx, n := c.unknowns()
	if n == 0 {
		return nil, fmt.Errorf("pdn: circuit has no unknown nodes")
	}
	t := &BatchTransient{
		c: c, dt: dt, lanes: lanes, idx: idx, n: n, time: start,
		onLane:   onLane,
		vab:      make([]float64, len(c.elements)*lanes),
		ibr:      make([]float64, len(c.elements)*lanes),
		pots:     make([]float64, c.NumNodes()*lanes),
		fixedPot: make([]float64, c.NumNodes()*lanes),
		rhs:      make([]float64, n*lanes),
		sol:      make([]float64, n*lanes),
		laneRHS:  make([]float64, n),
		laneSol:  make([]float64, n),
	}
	for node, i := range idx {
		if i >= 0 {
			continue
		}
		v := c.potentialOfFixed(NodeID(node))
		for l := 0; l < lanes; l++ {
			t.fixedPot[node*lanes+l] = v
		}
	}
	geq, lu, err := stampCompanion(c, dt, idx, n)
	if err != nil {
		return nil, err
	}
	t.geq, t.lu = geq, lu
	dcLU, err := factorDCMatrix(c, idx, n)
	if err != nil {
		return nil, err
	}
	t.dcLU = dcLU
	t.buildPlan()
	if err := t.initState(); err != nil {
		return nil, err
	}
	return t, nil
}

// Lanes returns the batch width.
func (t *BatchTransient) Lanes() int { return t.lanes }

// Time returns the current simulation time in seconds.
func (t *BatchTransient) Time() float64 { return t.time }

// Dt returns the fixed timestep.
func (t *BatchTransient) Dt() float64 { return t.dt }

// SetLaneFixed pins a fixed node to a lane-specific potential. The
// node must already be fixed in the circuit — fixed-node potentials
// enter only the right-hand side, so lanes can run at different supply
// settings against the same factored matrices. The new potential takes
// effect at the next Reset (matching Circuit.FixNode, which Transient
// also observes only through Reset).
func (t *BatchTransient) SetLaneFixed(lane int, n NodeID, volts float64) error {
	t.c.checkNode(n)
	if lane < 0 || lane >= t.lanes {
		return fmt.Errorf("pdn: lane %d out of range [0,%d)", lane, t.lanes)
	}
	if _, ok := t.c.FixedVoltage(n); !ok {
		return fmt.Errorf("pdn: SetLaneFixed on %q, which is not a fixed node", t.c.NodeName(n))
	}
	t.fixedPot[int(n)*t.lanes+lane] = volts
	return nil
}

// Voltage returns the potential of node n in the given lane at the
// current time.
func (t *BatchTransient) Voltage(lane int, n NodeID) float64 {
	t.c.checkNode(n)
	return t.pots[int(n)*t.lanes+lane]
}

// BranchCurrent returns the current (a -> b) through element i in
// insertion order, for the given lane. Exported for white-box testing.
func (t *BatchTransient) BranchCurrent(lane, i int) float64 {
	return t.ibr[i*t.lanes+lane]
}

// Reset rewinds all lanes to the given start time and re-derives each
// lane's DC operating point from the circuit's current loads and the
// lane's fixed potentials. Neither nodal matrix is re-stamped or
// re-factored, so a batch session can retune lane supplies, swap what
// the load closures compute, and restart from here at the cost of one
// linear solve per lane.
func (t *BatchTransient) Reset(start float64) error {
	t.time = start
	t.step = 0
	t.buildPlan()
	return t.initState()
}

// buildPlan captures the per-step RHS contributions, snapshotting each
// lane's fixed-node potentials in effect now. The entry list (and so
// the accumulation order per lane) is identical to the single-lane
// plan: hasFA/hasFB depend only on topology, never on lane state.
func (t *BatchTransient) buildPlan() {
	t.plan = t.plan[:0]
	for ei, e := range t.c.elements {
		pe := stepElem{kind: e.kind, ei: ei, geq: t.geq[ei], ia: t.idx[e.a], ib: t.idx[e.b]}
		pe.hasFA = pe.ia >= 0 && pe.ib < 0
		pe.hasFB = pe.ib >= 0 && pe.ia < 0
		if e.kind == kindResistor && !pe.hasFA && !pe.hasFB {
			continue // no history source, no fixed contribution
		}
		t.plan = append(t.plan, pe)
	}
	B := t.lanes
	if need := len(t.plan) * B; cap(t.planFA) < need {
		t.planFA = make([]float64, need)
		t.planFB = make([]float64, need)
	} else {
		t.planFA = t.planFA[:need]
		t.planFB = t.planFB[:need]
	}
	for pi := range t.plan {
		pe := &t.plan[pi]
		e := t.c.elements[pe.ei]
		for l := 0; l < B; l++ {
			if pe.hasFA {
				t.planFA[pi*B+l] = pe.geq * t.fixedPot[int(e.b)*B+l]
			}
			if pe.hasFB {
				t.planFB[pi*B+l] = pe.geq * t.fixedPot[int(e.a)*B+l]
			}
		}
	}
}

// initState derives each lane's initial condition from its DC
// operating point: loads evaluated at the current simulation time (for
// that lane, via onLane) against the cached DC factorization. The
// per-lane arithmetic mirrors Transient.initState exactly.
func (t *BatchTransient) initState() error {
	c := t.c
	B := t.lanes
	for l := 0; l < B; l++ {
		rhs, sol := t.laneRHS, t.laneSol
		for i := range rhs {
			rhs[i] = 0
		}
		for _, e := range c.elements {
			ge, ok := dcConductance(e)
			if !ok {
				continue
			}
			ia, ib := t.idx[e.a], t.idx[e.b]
			if ia >= 0 && ib < 0 {
				rhs[ia] += ge * t.fixedPot[int(e.b)*B+l]
			}
			if ib >= 0 && ia < 0 {
				rhs[ib] += ge * t.fixedPot[int(e.a)*B+l]
			}
		}
		if t.onLane != nil {
			t.onLane(l)
		}
		for _, ld := range c.loads {
			if i := t.idx[ld.Node]; i >= 0 {
				rhs[i] -= ld.Current(t.time)
			}
		}
		t.dcLU.solveInto(sol, rhs)
		for node, i := range t.idx {
			if i >= 0 {
				t.pots[node*B+l] = sol[i]
			} else {
				t.pots[node*B+l] = t.fixedPot[node*B+l]
			}
		}
		// Branch states from the DC solution.
		for ei, e := range c.elements {
			va, vb := t.pots[int(e.a)*B+l], t.pots[int(e.b)*B+l]
			t.vab[ei*B+l] = va - vb
			switch e.kind {
			case kindResistor:
				t.ibr[ei*B+l] = (va - vb) / e.value
			case kindInductor:
				t.ibr[ei*B+l] = (va - vb) / dcShortOhms
				t.vab[ei*B+l] = 0 // an ideal inductor carries no DC voltage
			case kindCapacitor:
				t.ibr[ei*B+l] = 0
			}
		}
	}
	return nil
}

// Step advances every lane by one timestep. It allocates nothing.
func (t *BatchTransient) Step() error {
	c := t.c
	B := t.lanes
	next := t.time + t.dt
	rhs := t.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	// History sources and fixed-node conductance contributions, from
	// the precomputed plan. Per lane this is the same element order and
	// the same arithmetic as the single-lane Step.
	for pi := range t.plan {
		pe := &t.plan[pi]
		if pe.hasFA {
			fa := t.planFA[pi*B : pi*B+B : pi*B+B]
			ra := rhs[pe.ia*B : pe.ia*B+B]
			for l := range ra {
				ra[l] += fa[l]
			}
		}
		if pe.hasFB {
			fb := t.planFB[pi*B : pi*B+B : pi*B+B]
			rb := rhs[pe.ib*B : pe.ib*B+B]
			for l := range rb {
				rb[l] += fb[l]
			}
		}
		switch pe.kind {
		case kindCapacitor:
			// i(t+dt) = geq*v(t+dt) - hist, hist = geq*v(t) + i(t).
			// Branch current a->b contributes +hist into node a's RHS.
			geq := pe.geq
			vab := t.vab[pe.ei*B : pe.ei*B+B : pe.ei*B+B]
			ibr := t.ibr[pe.ei*B : pe.ei*B+B : pe.ei*B+B]
			switch {
			case pe.ia >= 0 && pe.ib >= 0:
				ra := rhs[pe.ia*B : pe.ia*B+B]
				rb := rhs[pe.ib*B : pe.ib*B+B]
				for l := range ra {
					hist := geq*vab[l] + ibr[l]
					ra[l] += hist
					rb[l] -= hist
				}
			case pe.ia >= 0:
				ra := rhs[pe.ia*B : pe.ia*B+B]
				for l := range ra {
					ra[l] += geq*vab[l] + ibr[l]
				}
			case pe.ib >= 0:
				rb := rhs[pe.ib*B : pe.ib*B+B]
				for l := range rb {
					rb[l] -= geq*vab[l] + ibr[l]
				}
			}
		case kindInductor:
			// i(t+dt) = geq*v(t+dt) + hist, hist = i(t) + geq*v(t).
			geq := pe.geq
			vab := t.vab[pe.ei*B : pe.ei*B+B : pe.ei*B+B]
			ibr := t.ibr[pe.ei*B : pe.ei*B+B : pe.ei*B+B]
			switch {
			case pe.ia >= 0 && pe.ib >= 0:
				ra := rhs[pe.ia*B : pe.ia*B+B]
				rb := rhs[pe.ib*B : pe.ib*B+B]
				for l := range ra {
					hist := ibr[l] + geq*vab[l]
					ra[l] -= hist
					rb[l] += hist
				}
			case pe.ia >= 0:
				ra := rhs[pe.ia*B : pe.ia*B+B]
				for l := range ra {
					ra[l] -= ibr[l] + geq*vab[l]
				}
			case pe.ib >= 0:
				rb := rhs[pe.ib*B : pe.ib*B+B]
				for l := range rb {
					rb[l] += ibr[l] + geq*vab[l]
				}
			}
		}
	}
	// Loads evaluated at the new time, lane by lane (backward-looking
	// sources keep the trapezoidal solve linear).
	for l := 0; l < B; l++ {
		if t.onLane != nil {
			t.onLane(l)
		}
		for _, ld := range c.loads {
			if i := t.idx[ld.Node]; i >= 0 {
				rhs[i*B+l] -= ld.Current(next)
			}
		}
	}
	t.lu.solveBatchInto(t.sol, rhs, B)
	for i, v := range t.sol {
		// v-v is 0 for every finite v and NaN for NaN and ±Inf, so one
		// subtraction replaces the IsNaN/IsInf pair on this hot path.
		if v-v != 0 {
			return fmt.Errorf("pdn: integration diverged at t=%g (lane %d)", next, i%B)
		}
	}
	// Scatter node potentials.
	for node, i := range t.idx {
		po := t.pots[node*B : node*B+B]
		if i >= 0 {
			copy(po, t.sol[i*B:i*B+B])
		} else {
			copy(po, t.fixedPot[node*B:node*B+B])
		}
	}
	// Update branch states, all lanes per element.
	for ei, e := range c.elements {
		pa := t.pots[int(e.a)*B : int(e.a)*B+B : int(e.a)*B+B]
		pb := t.pots[int(e.b)*B : int(e.b)*B+B : int(e.b)*B+B]
		vab := t.vab[ei*B : ei*B+B : ei*B+B]
		ibr := t.ibr[ei*B : ei*B+B : ei*B+B]
		geq := t.geq[ei]
		switch e.kind {
		case kindResistor:
			for l := range vab {
				v := pa[l] - pb[l]
				ibr[l] = v * geq
				vab[l] = v
			}
		case kindCapacitor:
			for l := range vab {
				v := pa[l] - pb[l]
				hist := geq*vab[l] + ibr[l]
				ibr[l] = geq*v - hist
				vab[l] = v
			}
		case kindInductor:
			for l := range vab {
				v := pa[l] - pb[l]
				hist := ibr[l] + geq*vab[l]
				ibr[l] = geq*v + hist
				vab[l] = v
			}
		}
	}
	t.time = next
	t.step++
	return nil
}

// RunUntil advances all lanes until the given absolute time without
// recording anything. Useful for warm-up.
func (t *BatchTransient) RunUntil(until float64) error {
	for t.time < until-t.dt/2 {
		if err := t.Step(); err != nil {
			return err
		}
	}
	return nil
}
