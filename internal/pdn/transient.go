package pdn

import (
	"fmt"
	"math"

	"voltnoise/internal/signal"
)

// Transient integrates a circuit forward in time with the trapezoidal
// rule. Reactive elements are replaced by their companion models: a
// constant conductance (folded once into the nodal matrix, which is
// then LU-factored once) plus a history current source recomputed each
// step. This is the standard SPICE formulation and is A-stable, so
// resonant PDNs integrate robustly at any step size that resolves the
// waveforms of interest.
type Transient struct {
	c    *Circuit
	dt   float64
	lu   *realLU
	dcLU *realLU // DC operating-point factorization (inductors shorted)
	idx  []int   // NodeID -> unknown index or -1
	n    int     // number of unknowns

	// idxP maps NodeID to the unknown's slot in lu's permuted row
	// order (invPerm[idx[node]], or -1): Step assembles the right-hand
	// side directly in that order so the solve runs in place, skipping
	// the per-step gather copy. unkNode is the inverse scatter map —
	// unkNode[i] is the node whose solved potential sits at slot i
	// after the in-place substitutions (which, like solveInto, leave
	// unknown i's solution at slot i; only RHS assembly is permuted).
	idxP    []int
	unkNode []int32

	// Per-element companion state. vab/ibr hold the DC operating point
	// only: past the first step, branch state lives in hist (the
	// trapezoidal history source) and BranchCurrent derives currents on
	// demand from the node potentials.
	geq  []float64 // companion conductance per element (0 for resistors)
	vab  []float64 // branch voltage at the DC operating point
	ibr  []float64 // branch current at the DC operating point (a -> b)
	hist []float64 // companion history source for the NEXT step
	pots []float64 // node potentials at current time (all nodes)

	plan []stepElem // per-step RHS contributors, in element order

	rhs []float64
	sol []float64

	time float64
	step int
}

// stepElem is one element's per-step RHS work, precomputed so Step
// walks a compact list instead of re-deriving index lookups and
// fixed-node potentials every timestep. Resistors touching no fixed
// node contribute nothing to the RHS and are dropped from the plan;
// the remaining contributions keep element insertion order, so the
// floating-point accumulation is bit-identical to the naive loop.
type stepElem struct {
	kind         elementKind
	ei           int     // element index (companion state slot)
	geq          float64 // companion conductance
	na, nb       int     // node indices (for potential lookups)
	ia, ib       int     // unknown indices (-1: grounded or fixed)
	iaP, ibP     int     // unknown RHS slots in permuted row order (-1 alike)
	fa, fb       float64 // fixed-node RHS contributions (geq * fixed potential)
	hasFA, hasFB bool
}

// NewTransient prepares a transient simulation of c with fixed timestep
// dt, starting at time zero. See NewTransientAt.
func NewTransient(c *Circuit, dt float64) (*Transient, error) {
	return NewTransientAt(c, dt, 0)
}

// NewTransientAt prepares a transient simulation of c with fixed
// timestep dt, starting at simulation time start. The circuit's DC
// operating point (inductors shorted, capacitors open, loads evaluated
// at the start time) is used as the initial condition, so a well-formed
// circuit starts in steady state and shows no artificial start-up
// transient.
func NewTransientAt(c *Circuit, dt, start float64) (*Transient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("pdn: non-positive timestep %g", dt)
	}
	idx, n := c.unknowns()
	if n == 0 {
		return nil, fmt.Errorf("pdn: circuit has no unknown nodes")
	}
	t := &Transient{
		c: c, dt: dt, idx: idx, n: n, time: start,
		vab:  make([]float64, len(c.elements)),
		ibr:  make([]float64, len(c.elements)),
		hist: make([]float64, len(c.elements)),
		pots: make([]float64, c.NumNodes()),
		rhs:  make([]float64, n),
		sol:  make([]float64, n),
	}
	geq, lu, err := stampCompanion(c, dt, idx, n)
	if err != nil {
		return nil, err
	}
	t.geq, t.lu = geq, lu
	t.idxP, t.unkNode = permutedIndex(idx, lu)
	dcLU, err := factorDCMatrix(c, idx, n)
	if err != nil {
		return nil, err
	}
	t.dcLU = dcLU
	t.buildPlan()
	if err := t.initState(); err != nil {
		return nil, err
	}
	return t, nil
}

// Reset rewinds the simulation to the given start time and re-derives
// the DC operating point from the circuit's current loads and fixed
// potentials. Neither nodal matrix is re-stamped or re-factored — they
// depend only on element values and the timestep — so a measurement
// session can retune fixed supplies, let load closures change what
// they compute, and restart from here at the cost of one linear solve.
func (t *Transient) Reset(start float64) error {
	t.time = start
	t.step = 0
	t.buildPlan()
	return t.initState()
}

// permutedIndex derives the permuted-RHS maps for an engine solving in
// place against lu: nodeP[node] is the RHS slot of the node's unknown
// (invPerm[idx[node]], -1 for grounded/fixed nodes) and unkNode[i] is
// the node whose solution the substitutions leave at slot i.
func permutedIndex(idx []int, lu *realLU) (nodeP []int, unkNode []int32) {
	nodeP = make([]int, len(idx))
	unkNode = make([]int32, lu.n)
	for node, i := range idx {
		if i >= 0 {
			nodeP[node] = lu.invPerm[i]
			unkNode[i] = int32(node)
		} else {
			nodeP[node] = -1
		}
	}
	return nodeP, unkNode
}

// buildPlan captures the per-step RHS contributions, snapshotting the
// fixed-node potentials in effect now (Reset refreshes the snapshot
// after a FixNode retune).
func (t *Transient) buildPlan() {
	t.plan = t.plan[:0]
	for ei, e := range t.c.elements {
		pe := stepElem{kind: e.kind, ei: ei, geq: t.geq[ei], na: int(e.a), nb: int(e.b), ia: t.idx[e.a], ib: t.idx[e.b]}
		pe.iaP, pe.ibP = t.idxP[e.a], t.idxP[e.b]
		if pe.ia >= 0 && pe.ib < 0 {
			pe.fa = pe.geq * t.c.potentialOfFixed(e.b)
			pe.hasFA = true
		}
		if pe.ib >= 0 && pe.ia < 0 {
			pe.fb = pe.geq * t.c.potentialOfFixed(e.a)
			pe.hasFB = true
		}
		if e.kind == kindResistor && !pe.hasFA && !pe.hasFB {
			continue // no history source, no fixed contribution
		}
		t.plan = append(t.plan, pe)
	}
}

// stampCompanion computes the trapezoidal companion conductance of
// every element and folds the set into a freshly factored nodal
// matrix. The matrix depends only on element values and the timestep,
// so single-lane and batched engines over the same circuit derive
// identical factorizations from this one helper.
func stampCompanion(c *Circuit, dt float64, idx []int, n int) (geq []float64, lu *realLU, err error) {
	geq = make([]float64, len(c.elements))
	g := make([]float64, n*n)
	for ei, e := range c.elements {
		var ge float64
		switch e.kind {
		case kindResistor:
			ge = 1 / e.value
		case kindCapacitor:
			ge = 2 * e.value / dt
		case kindInductor:
			ge = dt / (2 * e.value)
		}
		geq[ei] = ge
		stampReal(g, n, idx, e.a, e.b, ge)
	}
	lu, err = factorReal(g, n)
	if err != nil {
		return nil, nil, fmt.Errorf("pdn: transient setup: %w", err)
	}
	return geq, lu, nil
}

// stampReal adds conductance ge between nodes a and b into the nodal
// matrix of unknowns (rows/cols indexed by idx).
func stampReal(g []float64, n int, idx []int, a, b NodeID, ge float64) {
	ia, ib := idx[a], idx[b]
	if ia >= 0 {
		g[ia*n+ia] += ge
	}
	if ib >= 0 {
		g[ib*n+ib] += ge
	}
	if ia >= 0 && ib >= 0 {
		g[ia*n+ib] -= ge
		g[ib*n+ia] -= ge
	}
}

// dcShortOhms is the tiny resistance standing in for an inductor in
// the DC operating-point solve.
const dcShortOhms = 1e-9

// dcConductance returns the element's conductance in the DC
// operating-point solve (capacitors are open and report ok=false).
func dcConductance(e element) (ge float64, ok bool) {
	switch e.kind {
	case kindResistor:
		return 1 / e.value, true
	case kindInductor:
		return 1 / dcShortOhms, true
	}
	return 0, false
}

// factorDCMatrix stamps and factors the DC operating-point matrix:
// inductors become tiny resistances, capacitors are open. The matrix
// depends only on element values, so it is factored once and reused by
// every initState, across runs and fixed-supply retunes alike.
func factorDCMatrix(c *Circuit, idx []int, n int) (*realLU, error) {
	g := make([]float64, n*n)
	for _, e := range c.elements {
		ge, ok := dcConductance(e)
		if !ok {
			continue
		}
		stampReal(g, n, idx, e.a, e.b, ge)
	}
	lu, err := factorReal(g, n)
	if err != nil {
		return nil, fmt.Errorf("pdn: DC operating point: %w (is every node connected to a source?)", err)
	}
	return lu, nil
}

// initState derives the initial condition from the DC operating point:
// loads evaluated at the current simulation time against the cached DC
// factorization.
func (t *Transient) initState() error {
	c := t.c
	for i := range t.rhs {
		t.rhs[i] = 0
	}
	for _, e := range c.elements {
		ge, ok := dcConductance(e)
		if !ok {
			continue
		}
		// Fixed-node contributions move to the RHS.
		t.stampFixedRHS(t.rhs, e.a, e.b, ge)
	}
	for _, l := range c.loads {
		if i := t.idx[l.Node]; i >= 0 {
			t.rhs[i] -= l.Current(t.time)
		}
	}
	t.dcLU.solveInto(t.sol, t.rhs)
	t.scatterPotentials(t.sol)
	// Branch states from the DC solution.
	for ei, e := range c.elements {
		va, vb := t.pots[e.a], t.pots[e.b]
		t.vab[ei] = va - vb
		switch e.kind {
		case kindResistor:
			t.ibr[ei] = (va - vb) / e.value
		case kindInductor:
			t.ibr[ei] = (va - vb) / dcShortOhms
			t.vab[ei] = 0 // an ideal inductor carries no DC voltage
		case kindCapacitor:
			t.ibr[ei] = 0
		}
	}
	// Seed the history sources the first Step will consume, with the
	// exact expressions the step walk uses thereafter.
	for ei, e := range c.elements {
		switch e.kind {
		case kindCapacitor:
			t.hist[ei] = t.geq[ei]*t.vab[ei] + t.ibr[ei]
		case kindInductor:
			t.hist[ei] = t.ibr[ei] + t.geq[ei]*t.vab[ei]
		}
	}
	return nil
}

// stampFixedRHS accounts for a branch conductance touching a fixed
// node: the fixed potential's contribution moves to the RHS.
func (t *Transient) stampFixedRHS(rhs []float64, a, b NodeID, ge float64) {
	ia, ib := t.idx[a], t.idx[b]
	if ia >= 0 && ib < 0 {
		rhs[ia] += ge * t.c.potentialOfFixed(b)
	}
	if ib >= 0 && ia < 0 {
		rhs[ib] += ge * t.c.potentialOfFixed(a)
	}
}

// scatterPotentials writes the solved unknowns plus the fixed
// potentials into t.pots.
func (t *Transient) scatterPotentials(sol []float64) {
	for node, i := range t.idx {
		if i >= 0 {
			t.pots[node] = sol[i]
		} else {
			t.pots[node] = t.c.potentialOfFixed(NodeID(node))
		}
	}
}

// Time returns the current simulation time in seconds.
func (t *Transient) Time() float64 { return t.time }

// Dt returns the fixed timestep.
func (t *Transient) Dt() float64 { return t.dt }

// Voltage returns the potential of node n at the current time.
func (t *Transient) Voltage(n NodeID) float64 {
	t.c.checkNode(n)
	return t.pots[n]
}

// BranchCurrent returns the current (a -> b) through element i in
// insertion order. It is exported for white-box testing and
// element-level probing.
//
// Past the first step, currents are derived on demand from the node
// potentials and the cached history source — the exact expressions a
// per-step branch-state update would have stored, so readings are
// bit-identical to an engine that materialized them. At the DC
// operating point (before the first Step, or right after Reset) the
// stored DC values are returned instead: initState computes resistor
// current as (va-vb)/R, which can differ from v*geq in the last ULP.
func (t *Transient) BranchCurrent(i int) float64 {
	if t.step == 0 {
		return t.ibr[i]
	}
	e := t.c.elements[i]
	v := t.pots[e.a] - t.pots[e.b]
	switch e.kind {
	case kindCapacitor:
		return t.geq[i]*v - t.hist[i]
	case kindInductor:
		return t.geq[i]*v + t.hist[i]
	default: // resistor
		return v * t.geq[i]
	}
}

// Step advances the simulation by one timestep. It allocates nothing.
func (t *Transient) Step() error {
	c := t.c
	next := t.time + t.dt
	rhs := t.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	// History sources and fixed-node conductance contributions, from
	// the precomputed plan (same element order, same arithmetic). On
	// every step after the first, the walk also rolls each reactive
	// element's companion state forward from the potentials the last
	// solve produced — the same multiplies, subtractions, and additions
	// a separate end-of-step update pass would perform, fused here so
	// each element's state streams through the cache once per step.
	// RHS writes land at the permuted slots (iaP/ibP) so the solve can
	// run in place: per unknown the accumulation order is untouched
	// (one unknown, one slot), only the slot's address moves.
	first := t.step == 0
	hist, pots := t.hist, t.pots
	for i := range t.plan {
		pe := &t.plan[i]
		if pe.hasFA {
			rhs[pe.iaP] += pe.fa
		}
		if pe.hasFB {
			rhs[pe.ibP] += pe.fb
		}
		switch pe.kind {
		case kindCapacitor:
			// i(t+dt) = geq*v(t+dt) - hist, hist = geq*v(t) + i(t).
			// Branch current a->b contributes +hist into node a's RHS.
			h := hist[pe.ei]
			if !first {
				gv := pe.geq * (pots[pe.na] - pots[pe.nb])
				h = gv + (gv - h)
				hist[pe.ei] = h
			}
			if pe.iaP >= 0 {
				rhs[pe.iaP] += h
			}
			if pe.ibP >= 0 {
				rhs[pe.ibP] -= h
			}
		case kindInductor:
			// i(t+dt) = geq*v(t+dt) + hist, hist = i(t) + geq*v(t).
			h := hist[pe.ei]
			if !first {
				gv := pe.geq * (pots[pe.na] - pots[pe.nb])
				h = (gv + h) + gv
				hist[pe.ei] = h
			}
			if pe.iaP >= 0 {
				rhs[pe.iaP] -= h
			}
			if pe.ibP >= 0 {
				rhs[pe.ibP] += h
			}
		}
	}
	// Loads evaluated at the new time (backward-looking sources keep
	// the trapezoidal solve linear).
	for _, l := range c.loads {
		if i := t.idxP[l.Node]; i >= 0 {
			rhs[i] -= l.Current(next)
		}
	}
	t.lu.solveInPlace(rhs)
	// Scatter the solved unknowns, checking for divergence in the same
	// pass (v-v is 0 for every finite v and NaN for NaN and ±Inf).
	// Fixed-node potentials are not rewritten here: they change only
	// through Reset, which re-scatters them via initState. On
	// divergence the engine state is abandoned with the error.
	bad := false
	for i, node := range t.unkNode {
		v := rhs[i]
		if v-v != 0 {
			bad = true
		}
		t.pots[node] = v
	}
	if bad {
		return fmt.Errorf("pdn: integration diverged at t=%g", next)
	}
	t.time = next
	t.step++
	return nil
}

// Run advances the simulation for the given duration, recording the
// potential of each probe node every step. The returned traces are
// indexed like probes and start at the pre-run simulation time.
func (t *Transient) Run(duration float64, probes []NodeID) ([]*signal.Trace, error) {
	if duration < 0 {
		return nil, fmt.Errorf("pdn: negative run duration %g", duration)
	}
	steps := int(math.Round(duration / t.dt))
	traces := make([]*signal.Trace, len(probes))
	for i, p := range probes {
		t.c.checkNode(p)
		tr := signal.NewTrace(t.dt, steps+1)
		tr.Start = t.time
		tr.Samples[0] = t.Voltage(p)
		traces[i] = tr
	}
	for s := 1; s <= steps; s++ {
		if err := t.Step(); err != nil {
			return nil, err
		}
		for i, p := range probes {
			traces[i].Samples[s] = t.Voltage(p)
		}
	}
	return traces, nil
}

// RunUntil advances the simulation until the given absolute time
// without recording anything. Useful for warm-up.
func (t *Transient) RunUntil(until float64) error {
	for t.time < until-t.dt/2 {
		if err := t.Step(); err != nil {
			return err
		}
	}
	return nil
}
