package pdn

import (
	"fmt"
	"math"

	"voltnoise/internal/signal"
)

// Transient integrates a circuit forward in time with the trapezoidal
// rule. Reactive elements are replaced by their companion models: a
// constant conductance (folded once into the nodal matrix, which is
// then LU-factored once) plus a history current source recomputed each
// step. This is the standard SPICE formulation and is A-stable, so
// resonant PDNs integrate robustly at any step size that resolves the
// waveforms of interest.
type Transient struct {
	c   *Circuit
	dt  float64
	lu  *realLU
	idx []int // NodeID -> unknown index or -1
	n   int   // number of unknowns

	// Per-element companion state.
	geq  []float64 // companion conductance per element (0 for resistors)
	vab  []float64 // branch voltage at current time
	ibr  []float64 // branch current at current time (a -> b)
	pots []float64 // node potentials at current time (all nodes)

	rhs []float64
	sol []float64

	time float64
	step int
}

// NewTransient prepares a transient simulation of c with fixed timestep
// dt, starting at time zero. See NewTransientAt.
func NewTransient(c *Circuit, dt float64) (*Transient, error) {
	return NewTransientAt(c, dt, 0)
}

// NewTransientAt prepares a transient simulation of c with fixed
// timestep dt, starting at simulation time start. The circuit's DC
// operating point (inductors shorted, capacitors open, loads evaluated
// at the start time) is used as the initial condition, so a well-formed
// circuit starts in steady state and shows no artificial start-up
// transient.
func NewTransientAt(c *Circuit, dt, start float64) (*Transient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("pdn: non-positive timestep %g", dt)
	}
	idx, n := c.unknowns()
	if n == 0 {
		return nil, fmt.Errorf("pdn: circuit has no unknown nodes")
	}
	t := &Transient{
		c: c, dt: dt, idx: idx, n: n, time: start,
		geq:  make([]float64, len(c.elements)),
		vab:  make([]float64, len(c.elements)),
		ibr:  make([]float64, len(c.elements)),
		pots: make([]float64, c.NumNodes()),
		rhs:  make([]float64, n),
		sol:  make([]float64, n),
	}
	// Companion conductances.
	g := make([]float64, n*n)
	for ei, e := range c.elements {
		var ge float64
		switch e.kind {
		case kindResistor:
			ge = 1 / e.value
		case kindCapacitor:
			ge = 2 * e.value / dt
		case kindInductor:
			ge = dt / (2 * e.value)
		}
		t.geq[ei] = ge
		stampReal(g, n, idx, e.a, e.b, ge)
	}
	lu, err := factorReal(g, n)
	if err != nil {
		return nil, fmt.Errorf("pdn: transient setup: %w", err)
	}
	t.lu = lu
	if err := t.initDC(); err != nil {
		return nil, err
	}
	return t, nil
}

// stampReal adds conductance ge between nodes a and b into the nodal
// matrix of unknowns (rows/cols indexed by idx).
func stampReal(g []float64, n int, idx []int, a, b NodeID, ge float64) {
	ia, ib := idx[a], idx[b]
	if ia >= 0 {
		g[ia*n+ia] += ge
	}
	if ib >= 0 {
		g[ib*n+ib] += ge
	}
	if ia >= 0 && ib >= 0 {
		g[ia*n+ib] -= ge
		g[ib*n+ia] -= ge
	}
}

// initDC computes the DC operating point: inductors become tiny
// resistances, capacitors are open, loads are evaluated at t = 0.
func (t *Transient) initDC() error {
	const shortOhms = 1e-9
	c := t.c
	g := make([]float64, t.n*t.n)
	rhs := make([]float64, t.n)
	for _, e := range c.elements {
		var ge float64
		switch e.kind {
		case kindResistor:
			ge = 1 / e.value
		case kindInductor:
			ge = 1 / shortOhms
		case kindCapacitor:
			continue
		}
		stampReal(g, t.n, t.idx, e.a, e.b, ge)
		// Fixed-node contributions move to the RHS.
		t.stampFixedRHS(rhs, e.a, e.b, ge)
	}
	for _, l := range c.loads {
		if i := t.idx[l.Node]; i >= 0 {
			rhs[i] -= l.Current(t.time)
		}
	}
	lu, err := factorReal(g, t.n)
	if err != nil {
		return fmt.Errorf("pdn: DC operating point: %w (is every node connected to a source?)", err)
	}
	sol := make([]float64, t.n)
	lu.solveInto(sol, rhs)
	t.scatterPotentials(sol)
	// Branch states from the DC solution.
	for ei, e := range c.elements {
		va, vb := t.pots[e.a], t.pots[e.b]
		t.vab[ei] = va - vb
		switch e.kind {
		case kindResistor:
			t.ibr[ei] = (va - vb) / e.value
		case kindInductor:
			t.ibr[ei] = (va - vb) / shortOhms
			t.vab[ei] = 0 // an ideal inductor carries no DC voltage
		case kindCapacitor:
			t.ibr[ei] = 0
		}
	}
	return nil
}

// stampFixedRHS accounts for a branch conductance touching a fixed
// node: the fixed potential's contribution moves to the RHS.
func (t *Transient) stampFixedRHS(rhs []float64, a, b NodeID, ge float64) {
	ia, ib := t.idx[a], t.idx[b]
	if ia >= 0 && ib < 0 {
		rhs[ia] += ge * t.c.potentialOfFixed(b)
	}
	if ib >= 0 && ia < 0 {
		rhs[ib] += ge * t.c.potentialOfFixed(a)
	}
}

// scatterPotentials writes the solved unknowns plus the fixed
// potentials into t.pots.
func (t *Transient) scatterPotentials(sol []float64) {
	for node, i := range t.idx {
		if i >= 0 {
			t.pots[node] = sol[i]
		} else {
			t.pots[node] = t.c.potentialOfFixed(NodeID(node))
		}
	}
}

// Time returns the current simulation time in seconds.
func (t *Transient) Time() float64 { return t.time }

// Dt returns the fixed timestep.
func (t *Transient) Dt() float64 { return t.dt }

// Voltage returns the potential of node n at the current time.
func (t *Transient) Voltage(n NodeID) float64 {
	t.c.checkNode(n)
	return t.pots[n]
}

// BranchCurrent returns the current (a -> b) through element i in
// insertion order. It is exported for white-box testing and
// element-level probing.
func (t *Transient) BranchCurrent(i int) float64 { return t.ibr[i] }

// Step advances the simulation by one timestep.
func (t *Transient) Step() error {
	c := t.c
	next := t.time + t.dt
	for i := range t.rhs {
		t.rhs[i] = 0
	}
	// History sources and fixed-node conductance contributions.
	for ei, e := range c.elements {
		ge := t.geq[ei]
		t.stampFixedRHS(t.rhs, e.a, e.b, ge)
		var hist float64
		switch e.kind {
		case kindResistor:
			continue
		case kindCapacitor:
			// i(t+dt) = geq*v(t+dt) - hist, hist = geq*v(t) + i(t).
			// Branch current a->b contributes +hist into node a's RHS.
			hist = t.geq[ei]*t.vab[ei] + t.ibr[ei]
			t.addRHS(e.a, +hist)
			t.addRHS(e.b, -hist)
		case kindInductor:
			// i(t+dt) = geq*v(t+dt) + hist, hist = i(t) + geq*v(t).
			hist = t.ibr[ei] + t.geq[ei]*t.vab[ei]
			t.addRHS(e.a, -hist)
			t.addRHS(e.b, +hist)
		}
	}
	// Loads evaluated at the new time (backward-looking sources keep
	// the trapezoidal solve linear).
	for _, l := range c.loads {
		if i := t.idx[l.Node]; i >= 0 {
			t.rhs[i] -= l.Current(next)
		}
	}
	t.lu.solveInto(t.sol, t.rhs)
	for _, v := range t.sol {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("pdn: integration diverged at t=%g", next)
		}
	}
	t.scatterPotentials(t.sol)
	// Update branch states.
	for ei, e := range c.elements {
		v := t.pots[e.a] - t.pots[e.b]
		switch e.kind {
		case kindResistor:
			t.ibr[ei] = v * t.geq[ei]
		case kindCapacitor:
			hist := t.geq[ei]*t.vab[ei] + t.ibr[ei]
			t.ibr[ei] = t.geq[ei]*v - hist
		case kindInductor:
			hist := t.ibr[ei] + t.geq[ei]*t.vab[ei]
			t.ibr[ei] = t.geq[ei]*v + hist
		}
		t.vab[ei] = v
	}
	t.time = next
	t.step++
	return nil
}

// Run advances the simulation for the given duration, recording the
// potential of each probe node every step. The returned traces are
// indexed like probes and start at the pre-run simulation time.
func (t *Transient) Run(duration float64, probes []NodeID) ([]*signal.Trace, error) {
	if duration < 0 {
		return nil, fmt.Errorf("pdn: negative run duration %g", duration)
	}
	steps := int(math.Round(duration / t.dt))
	traces := make([]*signal.Trace, len(probes))
	for i, p := range probes {
		t.c.checkNode(p)
		tr := signal.NewTrace(t.dt, steps+1)
		tr.Start = t.time
		tr.Samples[0] = t.Voltage(p)
		traces[i] = tr
	}
	for s := 1; s <= steps; s++ {
		if err := t.Step(); err != nil {
			return nil, err
		}
		for i, p := range probes {
			traces[i].Samples[s] = t.Voltage(p)
		}
	}
	return traces, nil
}

// RunUntil advances the simulation until the given absolute time
// without recording anything. Useful for warm-up.
func (t *Transient) RunUntil(until float64) error {
	for t.time < until-t.dt/2 {
		if err := t.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (t *Transient) addRHS(n NodeID, v float64) {
	if i := t.idx[n]; i >= 0 {
		t.rhs[i] += v
	}
}
