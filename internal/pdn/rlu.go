package pdn

import (
	"fmt"
	"math"
)

// realLU is a dense real LU factorization with partial pivoting, used
// by the transient engine where the (constant) conductance matrix is
// factored once and solved against a new right-hand side every step.
type realLU struct {
	n    int
	lu   []float64
	perm []int
}

// factorReal factors the n x n row-major matrix a. a is not modified.
func factorReal(a []float64, n int) (*realLU, error) {
	if len(a) != n*n {
		panic(fmt.Sprintf("pdn: factorReal matrix length %d for n=%d", len(a), n))
	}
	lu := make([]float64, n*n)
	copy(lu, a)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		pivot := col
		maxMag := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if mag := math.Abs(lu[r*n+col]); mag > maxMag {
				maxMag = mag
				pivot = r
			}
		}
		if maxMag < 1e-300 {
			return nil, fmt.Errorf("pdn: singular conductance matrix (pivot %d)", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				lu[col*n+j], lu[pivot*n+j] = lu[pivot*n+j], lu[col*n+j]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] * inv
			lu[r*n+col] = f
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu[r*n+j] -= f * lu[col*n+j]
			}
		}
	}
	return &realLU{n: n, lu: lu, perm: perm}, nil
}

// solveInto solves A*x = b, writing the solution into x. b is not
// modified; x and b must both have length n and may not alias.
func (f *realLU) solveInto(x, b []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("pdn: solveInto with len(x)=%d len(b)=%d n=%d", len(x), len(b), n))
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	for i := 1; i < n; i++ {
		sum := x[i]
		row := f.lu[i*n : i*n+i]
		for j, v := range row {
			sum -= v * x[j]
		}
		x[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= f.lu[i*n+j] * x[j]
		}
		x[i] = sum / f.lu[i*n+i]
	}
}
