package pdn

import (
	"fmt"
	"math"
)

// realLU is a real LU factorization with partial pivoting, used by the
// transient engine where the (constant) conductance matrix is factored
// once and solved against a new right-hand side every step.
//
// PDN conductance matrices are mostly tree-structured, so the LU
// factors stay sparse (the zEC12 netlist factors to ~70% zeros).
// Alongside the dense factor the nonzero pattern of each row is
// recorded once, and the substitutions walk only the stored nonzeros.
// Skipping an exactly-zero coefficient never changes a solution value
// (x - 0*xj == x), so the sparse walk is bit-identical to the dense
// one — and both solve paths share the same pattern, so the batch and
// single-lane engines perform identical per-lane arithmetic.
type realLU struct {
	n    int
	lu   []float64
	perm []int

	// Sparse substitution pattern: row r's L nonzeros (columns < r)
	// sit at lVal/lCol[lPtr[r]:lPtr[r+1]], its U nonzeros (columns
	// > r) at uVal/uCol[uPtr[r]:uPtr[r+1]], columns ascending — the
	// same order the dense loops visit them in. diag is the U
	// diagonal.
	lVal, uVal []float64
	lCol, uCol []int32
	lPtr, uPtr []int32
	diag       []float64
}

// factorReal factors the n x n row-major matrix a. a is not modified.
func factorReal(a []float64, n int) (*realLU, error) {
	if len(a) != n*n {
		panic(fmt.Sprintf("pdn: factorReal matrix length %d for n=%d", len(a), n))
	}
	lu := make([]float64, n*n)
	copy(lu, a)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		pivot := col
		maxMag := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if mag := math.Abs(lu[r*n+col]); mag > maxMag {
				maxMag = mag
				pivot = r
			}
		}
		if maxMag < 1e-300 {
			return nil, fmt.Errorf("pdn: singular conductance matrix (pivot %d)", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				lu[col*n+j], lu[pivot*n+j] = lu[pivot*n+j], lu[col*n+j]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] * inv
			lu[r*n+col] = f
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu[r*n+j] -= f * lu[col*n+j]
			}
		}
	}
	f := &realLU{n: n, lu: lu, perm: perm}
	f.indexNonzeros()
	return f, nil
}

// indexNonzeros records the nonzero pattern of the factored L and U
// triangles for the sparse substitutions.
func (f *realLU) indexNonzeros() {
	n := f.n
	f.lPtr = make([]int32, n+1)
	f.uPtr = make([]int32, n+1)
	f.diag = make([]float64, n)
	for i := 0; i < n; i++ {
		f.diag[i] = f.lu[i*n+i]
		for j := 0; j < i; j++ {
			if v := f.lu[i*n+j]; v != 0 {
				f.lVal = append(f.lVal, v)
				f.lCol = append(f.lCol, int32(j))
			}
		}
		f.lPtr[i+1] = int32(len(f.lVal))
		for j := i + 1; j < n; j++ {
			if v := f.lu[i*n+j]; v != 0 {
				f.uVal = append(f.uVal, v)
				f.uCol = append(f.uCol, int32(j))
			}
		}
		f.uPtr[i+1] = int32(len(f.uVal))
	}
}

// solveBatchInto solves A*X = B for `lanes` independent right-hand
// sides in lockstep, writing the solution block into x. Both x and b
// hold n*lanes values with the lanes of each row adjacent (row i, lane
// l lives at i*lanes+l), so every inner loop streams a contiguous
// lane-width run — cache-friendly and trivially vectorizable, with
// `lanes` independent dependency chains where solveInto has one.
//
// Lane l of the solution is bit-identical to solveInto run on lane l
// of b alone: per column the elimination performs exactly the same
// multiplies, subtractions, and the same final division in the same
// order — only the loop nesting interleaves work across independent
// columns, never within one.
func (f *realLU) solveBatchInto(x, b []float64, lanes int) {
	n := f.n
	if lanes < 1 || len(b) != n*lanes || len(x) != n*lanes {
		panic(fmt.Sprintf("pdn: solveBatchInto with len(x)=%d len(b)=%d n=%d lanes=%d", len(x), len(b), n, lanes))
	}
	for i := 0; i < n; i++ {
		copy(x[i*lanes:i*lanes+lanes], b[f.perm[i]*lanes:f.perm[i]*lanes+lanes])
	}
	for i := 1; i < n; i++ {
		xi := x[i*lanes : i*lanes+lanes]
		for k := f.lPtr[i]; k < f.lPtr[i+1]; k++ {
			v := f.lVal[k]
			j := int(f.lCol[k])
			xj := x[j*lanes : j*lanes+lanes : j*lanes+lanes]
			for l := range xi {
				xi[l] -= v * xj[l]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		xi := x[i*lanes : i*lanes+lanes]
		for k := f.uPtr[i]; k < f.uPtr[i+1]; k++ {
			v := f.uVal[k]
			j := int(f.uCol[k])
			xj := x[j*lanes : j*lanes+lanes : j*lanes+lanes]
			for l := range xi {
				xi[l] -= v * xj[l]
			}
		}
		d := f.diag[i]
		for l := range xi {
			xi[l] /= d
		}
	}
}

// solveInto solves A*x = b, writing the solution into x. b is not
// modified; x and b must both have length n and may not alias.
func (f *realLU) solveInto(x, b []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("pdn: solveInto with len(x)=%d len(b)=%d n=%d", len(x), len(b), n))
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	for i := 1; i < n; i++ {
		sum := x[i]
		for k := f.lPtr[i]; k < f.lPtr[i+1]; k++ {
			sum -= f.lVal[k] * x[f.lCol[k]]
		}
		x[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := f.uPtr[i]; k < f.uPtr[i+1]; k++ {
			sum -= f.uVal[k] * x[f.uCol[k]]
		}
		x[i] = sum / f.diag[i]
	}
}
