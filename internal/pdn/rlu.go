package pdn

import (
	"fmt"
	"math"
)

// realLU is a real LU factorization with partial pivoting, used by the
// transient engine where the (constant) conductance matrix is factored
// once and solved against a new right-hand side every step.
//
// PDN conductance matrices are mostly tree-structured, so the LU
// factors stay sparse (the zEC12 netlist factors to ~70% zeros).
// Alongside the dense factor the nonzero pattern of each row is
// recorded once, and the substitutions walk only the stored nonzeros.
// Skipping an exactly-zero coefficient never changes a solution value
// (x - 0*xj == x), so the sparse walk is bit-identical to the dense
// one — and both solve paths share the same pattern, so the batch and
// single-lane engines perform identical per-lane arithmetic.
type realLU struct {
	n    int
	lu   []float64
	perm []int
	// invPerm is perm's inverse: invPerm[perm[i]] == i. The in-place
	// solve paths have their callers assemble the right-hand side
	// directly in permuted row order (a contribution to unknown u lands
	// at slot invPerm[u]), which removes the per-solve gather pass —
	// an addressing change only, so solutions stay bit-identical.
	invPerm []int

	// Sparse substitution pattern: row r's L nonzeros (columns < r)
	// sit at lVal/lCol[lPtr[r]:lPtr[r+1]], its U nonzeros (columns
	// > r) at uVal/uCol[uPtr[r]:uPtr[r+1]], columns ascending — the
	// same order the dense loops visit them in. diag is the U
	// diagonal.
	lVal, uVal []float64
	lCol, uCol []int32
	lPtr, uPtr []int32
	diag       []float64
	// invDiag is 1/diag, computed once at factorization time: the
	// substitutions scale each row by multiplying with the reciprocal
	// instead of dividing, trading one division per row per solve for
	// one per row per factorization. Every solve path (blocked,
	// element-wise, single- and multi-RHS) uses the same reciprocal, so
	// they all remain byte-identical to one another.
	invDiag []float64

	// Blocked (supernodal-style) substitution plan: each row's nonzeros
	// are grouped into maximal runs of consecutive columns, recorded in
	// elimination order. Row r's L runs sit at lRunPtr[r]:lRunPtr[r+1];
	// run q starts at column lRunCol[q] and spans lRunLen[q] columns
	// whose values are the next lRunLen[q] entries of lVal. Walking runs
	// instead of single entries turns the inner substitution loops into
	// contiguous streams (no per-element column indirection) while
	// performing exactly the same multiplies and subtractions in the
	// same order, so the blocked walk is bit-identical to the
	// element-wise one. The tree-structured PDN matrices factor into
	// long consecutive bands, which is what makes the runs worthwhile.
	lRunCol, uRunCol []int32
	lRunLen, uRunLen []int32
	lRunPtr, uRunPtr []int32
}

// factorReal factors the n x n row-major matrix a. a is not modified.
func factorReal(a []float64, n int) (*realLU, error) {
	if len(a) != n*n {
		panic(fmt.Sprintf("pdn: factorReal matrix length %d for n=%d", len(a), n))
	}
	lu := make([]float64, n*n)
	copy(lu, a)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		pivot := col
		maxMag := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if mag := math.Abs(lu[r*n+col]); mag > maxMag {
				maxMag = mag
				pivot = r
			}
		}
		if maxMag < 1e-300 {
			return nil, fmt.Errorf("pdn: singular conductance matrix (pivot %d)", col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				lu[col*n+j], lu[pivot*n+j] = lu[pivot*n+j], lu[col*n+j]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] * inv
			lu[r*n+col] = f
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu[r*n+j] -= f * lu[col*n+j]
			}
		}
	}
	f := &realLU{n: n, lu: lu, perm: perm}
	f.indexNonzeros()
	return f, nil
}

// indexNonzeros records the nonzero pattern of the factored L and U
// triangles for the sparse substitutions.
func (f *realLU) indexNonzeros() {
	n := f.n
	f.invPerm = make([]int, n)
	for i, p := range f.perm {
		f.invPerm[p] = i
	}
	f.lPtr = make([]int32, n+1)
	f.uPtr = make([]int32, n+1)
	f.diag = make([]float64, n)
	f.invDiag = make([]float64, n)
	for i := 0; i < n; i++ {
		f.diag[i] = f.lu[i*n+i]
		f.invDiag[i] = 1 / f.diag[i]
		for j := 0; j < i; j++ {
			if v := f.lu[i*n+j]; v != 0 {
				f.lVal = append(f.lVal, v)
				f.lCol = append(f.lCol, int32(j))
			}
		}
		f.lPtr[i+1] = int32(len(f.lVal))
		for j := i + 1; j < n; j++ {
			if v := f.lu[i*n+j]; v != 0 {
				f.uVal = append(f.uVal, v)
				f.uCol = append(f.uCol, int32(j))
			}
		}
		f.uPtr[i+1] = int32(len(f.uVal))
	}
	f.lRunCol, f.lRunLen, f.lRunPtr = indexRuns(f.lCol, f.lPtr, n)
	f.uRunCol, f.uRunLen, f.uRunPtr = indexRuns(f.uCol, f.uPtr, n)
}

// indexRuns groups each row's ascending nonzero columns into maximal
// runs of consecutive columns, preserving order — the blocked
// substitution plan.
func indexRuns(cols []int32, ptr []int32, n int) (runCol, runLen, runPtr []int32) {
	runPtr = make([]int32, n+1)
	for i := 0; i < n; i++ {
		k := ptr[i]
		for k < ptr[i+1] {
			c0 := cols[k]
			ln := int32(1)
			for k+ln < ptr[i+1] && cols[k+ln] == c0+ln {
				ln++
			}
			runCol = append(runCol, c0)
			runLen = append(runLen, ln)
			k += ln
		}
		runPtr[i+1] = int32(len(runCol))
	}
	return runCol, runLen, runPtr
}

// solveBatchInto solves A*X = B for `lanes` independent right-hand
// sides in lockstep, writing the solution block into x. Both x and b
// hold n*lanes values with the lanes of each row adjacent (row i, lane
// l lives at i*lanes+l), so every inner loop streams a contiguous
// lane-width run — cache-friendly and trivially vectorizable, with
// `lanes` independent dependency chains where solveInto has one.
//
// Lane l of the solution is bit-identical to solveInto run on lane l
// of b alone: per column the elimination performs exactly the same
// multiplies, subtractions, and the same final reciprocal scaling in the same
// order — only the loop nesting interleaves work across independent
// columns, never within one.
//
// Both substitutions walk the blocked run plan (see indexRuns): the
// per-row nonzeros are consumed as contiguous column bands, which
// drops the per-element column indirection of the element-wise walk
// while keeping the arithmetic order — and therefore every bit of the
// result — unchanged (solveBatchIntoElementwise pins the equivalence
// in the tests).
func (f *realLU) solveBatchInto(x, b []float64, lanes int) {
	n := f.n
	if lanes < 1 || len(b) != n*lanes || len(x) != n*lanes {
		panic(fmt.Sprintf("pdn: solveBatchInto with len(x)=%d len(b)=%d n=%d lanes=%d", len(x), len(b), n, lanes))
	}
	if lanes == DefaultBatchLanes {
		f.solveBatch8(x, b)
		return
	}
	for i := 0; i < n; i++ {
		copy(x[i*lanes:i*lanes+lanes], b[f.perm[i]*lanes:f.perm[i]*lanes+lanes])
	}
	for i := 1; i < n; i++ {
		xi := x[i*lanes : i*lanes+lanes : i*lanes+lanes]
		kv := int(f.lPtr[i])
		for r := f.lRunPtr[i]; r < f.lRunPtr[i+1]; r++ {
			ln := int(f.lRunLen[r])
			base := int(f.lRunCol[r]) * lanes
			// One contiguous band: values kv..kv+ln stream against the
			// x block at base..base+ln*lanes with no column lookups.
			for k := 0; k < ln; k++ {
				v := f.lVal[kv+k]
				xj := x[base+k*lanes : base+(k+1)*lanes : base+(k+1)*lanes]
				for l := range xi {
					xi[l] -= v * xj[l]
				}
			}
			kv += ln
		}
	}
	for i := n - 1; i >= 0; i-- {
		xi := x[i*lanes : i*lanes+lanes : i*lanes+lanes]
		kv := int(f.uPtr[i])
		for r := f.uRunPtr[i]; r < f.uRunPtr[i+1]; r++ {
			ln := int(f.uRunLen[r])
			base := int(f.uRunCol[r]) * lanes
			for k := 0; k < ln; k++ {
				v := f.uVal[kv+k]
				xj := x[base+k*lanes : base+(k+1)*lanes : base+(k+1)*lanes]
				for l := range xi {
					xi[l] -= v * xj[l]
				}
			}
			kv += ln
		}
		d := f.invDiag[i]
		for l := range xi {
			xi[l] *= d
		}
	}
}

// DefaultBatchLanes is the lane width the 8-wide substitution kernel
// is specialized for — exec.DefaultBatchWidth, restated here to keep
// pdn free of an exec import.
const DefaultBatchLanes = 8

// solveBatch8 is solveBatchInto's substitution specialized to 8 lanes:
// fixed-size array pointers let the compiler drop every inner bounds
// check, and each row's eight lane accumulators are hoisted into
// locals, so they live in registers across the row's entire nonzero
// walk (x rows never self-alias — L touches only columns < i, U only
// columns > i — which the hoisting encodes and the compiler cannot
// know). Unlike the generic path this kernel walks the element-wise
// pattern directly: under the fill-reducing unknown ordering the
// factors are nearly tree-sparse and almost every run has length one,
// so the run bookkeeping costs more than the per-element column loads
// it was built to avoid (the run plan still wins for generic lane
// widths, where it eliminates per-element slice-header setup). The
// arithmetic per lane is unchanged — same multiplies, subtractions and
// reciprocal scalings in the same order as any other lane width or
// walk order, as the equivalence tests pin.
func (f *realLU) solveBatch8(x, b []float64) {
	const B = DefaultBatchLanes
	n := f.n
	for i := 0; i < n; i++ {
		xi := (*[B]float64)(x[i*B : i*B+B])
		bp := (*[B]float64)(b[f.perm[i]*B : f.perm[i]*B+B])
		// Element-wise, not *xi = *bp: a 64-byte array assignment
		// lowers to a runtime.memmove call, which costs more than the
		// eight moves it performs.
		for l := 0; l < B; l++ {
			xi[l] = bp[l]
		}
	}
	for i := 1; i < n; i++ {
		xi := (*[B]float64)(x[i*B : i*B+B])
		x0, x1, x2, x3, x4, x5, x6, x7 := xi[0], xi[1], xi[2], xi[3], xi[4], xi[5], xi[6], xi[7]
		for k := int(f.lPtr[i]); k < int(f.lPtr[i+1]); k++ {
			v := f.lVal[k]
			base := int(f.lCol[k]) * B
			xj := (*[B]float64)(x[base : base+B])
			x0 -= v * xj[0]
			x1 -= v * xj[1]
			x2 -= v * xj[2]
			x3 -= v * xj[3]
			x4 -= v * xj[4]
			x5 -= v * xj[5]
			x6 -= v * xj[6]
			x7 -= v * xj[7]
		}
		xi[0], xi[1], xi[2], xi[3], xi[4], xi[5], xi[6], xi[7] = x0, x1, x2, x3, x4, x5, x6, x7
	}
	for i := n - 1; i >= 0; i-- {
		xi := (*[B]float64)(x[i*B : i*B+B])
		x0, x1, x2, x3, x4, x5, x6, x7 := xi[0], xi[1], xi[2], xi[3], xi[4], xi[5], xi[6], xi[7]
		for k := int(f.uPtr[i]); k < int(f.uPtr[i+1]); k++ {
			v := f.uVal[k]
			base := int(f.uCol[k]) * B
			xj := (*[B]float64)(x[base : base+B])
			x0 -= v * xj[0]
			x1 -= v * xj[1]
			x2 -= v * xj[2]
			x3 -= v * xj[3]
			x4 -= v * xj[4]
			x5 -= v * xj[5]
			x6 -= v * xj[6]
			x7 -= v * xj[7]
		}
		d := f.invDiag[i]
		xi[0], xi[1], xi[2], xi[3], xi[4], xi[5], xi[6], xi[7] = x0*d, x1*d, x2*d, x3*d, x4*d, x5*d, x6*d, x7*d
	}
}

// solveBatchIntoElementwise is the element-wise reference walk the
// blocked plan replaced, kept for the bit-identity tests.
func (f *realLU) solveBatchIntoElementwise(x, b []float64, lanes int) {
	n := f.n
	if lanes < 1 || len(b) != n*lanes || len(x) != n*lanes {
		panic(fmt.Sprintf("pdn: solveBatchInto with len(x)=%d len(b)=%d n=%d lanes=%d", len(x), len(b), n, lanes))
	}
	for i := 0; i < n; i++ {
		copy(x[i*lanes:i*lanes+lanes], b[f.perm[i]*lanes:f.perm[i]*lanes+lanes])
	}
	for i := 1; i < n; i++ {
		xi := x[i*lanes : i*lanes+lanes]
		for k := f.lPtr[i]; k < f.lPtr[i+1]; k++ {
			v := f.lVal[k]
			j := int(f.lCol[k])
			xj := x[j*lanes : j*lanes+lanes : j*lanes+lanes]
			for l := range xi {
				xi[l] -= v * xj[l]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		xi := x[i*lanes : i*lanes+lanes]
		for k := f.uPtr[i]; k < f.uPtr[i+1]; k++ {
			v := f.uVal[k]
			j := int(f.uCol[k])
			xj := x[j*lanes : j*lanes+lanes : j*lanes+lanes]
			for l := range xi {
				xi[l] -= v * xj[l]
			}
		}
		d := f.invDiag[i]
		for l := range xi {
			xi[l] *= d
		}
	}
}

// solveInto solves A*x = b, writing the solution into x. b is not
// modified; x and b must both have length n and may not alias. Like
// solveBatchInto it walks the blocked run plan; the result is
// bit-identical to the element-wise walk.
func (f *realLU) solveInto(x, b []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("pdn: solveInto with len(x)=%d len(b)=%d n=%d", len(x), len(b), n))
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	for i := 1; i < n; i++ {
		sum := x[i]
		kv := int(f.lPtr[i])
		for r := f.lRunPtr[i]; r < f.lRunPtr[i+1]; r++ {
			ln := int(f.lRunLen[r])
			j0 := int(f.lRunCol[r])
			if ln == 1 {
				sum -= f.lVal[kv] * x[j0]
				kv++
				continue
			}
			vals := f.lVal[kv : kv+ln : kv+ln]
			xs := x[j0 : j0+ln : j0+ln]
			for k, v := range vals {
				sum -= v * xs[k]
			}
			kv += ln
		}
		x[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		kv := int(f.uPtr[i])
		for r := f.uRunPtr[i]; r < f.uRunPtr[i+1]; r++ {
			ln := int(f.uRunLen[r])
			j0 := int(f.uRunCol[r])
			if ln == 1 {
				sum -= f.uVal[kv] * x[j0]
				kv++
				continue
			}
			vals := f.uVal[kv : kv+ln : kv+ln]
			xs := x[j0 : j0+ln : j0+ln]
			for k, v := range vals {
				sum -= v * xs[k]
			}
			kv += ln
		}
		x[i] = sum * f.invDiag[i]
	}
}

// solveInPlace solves A*x = b in place: on entry x holds the
// right-hand side already in permuted row order (slot i carries
// b[perm[i]], i.e. the caller scattered each contribution to unknown u
// into slot invPerm[u]); on exit x[i] is the solution of unknown i.
// The forward substitution only reads slots j < i that the pass has
// already finalized and the back substitution only reads slots j > i,
// so running in the right-hand-side buffer performs exactly the
// arithmetic of the two-buffer walk minus the gather copy — solutions
// are bit-identical.
//
// The walk is element-wise, not blocked: with one right-hand side the
// run bookkeeping costs more than the per-element column loads it
// avoids (the fill-reducing orderings leave almost every run at length
// one), which is the same trade solveBatch8 makes.
func (f *realLU) solveInPlace(x []float64) {
	n := f.n
	if len(x) != n {
		panic(fmt.Sprintf("pdn: solveInPlace with len(x)=%d n=%d", len(x), n))
	}
	for i := 1; i < n; i++ {
		sum := x[i]
		for k := f.lPtr[i]; k < f.lPtr[i+1]; k++ {
			sum -= f.lVal[k] * x[f.lCol[k]]
		}
		x[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := f.uPtr[i]; k < f.uPtr[i+1]; k++ {
			sum -= f.uVal[k] * x[f.uCol[k]]
		}
		x[i] = sum * f.invDiag[i]
	}
}

// solveBatchInPlace is solveInPlace for `lanes` lockstep right-hand
// sides (row i, lane l at i*lanes+l), already assembled in permuted
// row order. Widths 8 and 16 dispatch to the register-blocked kernels
// (hardware-vectorized where the host supports it); other widths walk
// the blocked run plan in place. Per lane every path performs the
// multiplies, subtractions and reciprocal scalings of the single-lane
// walk in the same order, so lanes stay bit-identical at any width.
func (f *realLU) solveBatchInPlace(x []float64, lanes int) {
	n := f.n
	if lanes < 1 || len(x) != n*lanes {
		panic(fmt.Sprintf("pdn: solveBatchInPlace with len(x)=%d n=%d lanes=%d", len(x), n, lanes))
	}
	switch lanes {
	case DefaultBatchLanes:
		f.solveBatch8InPlace(x)
		return
	case WideBatchLanes:
		f.solveBatch16InPlace(x)
		return
	}
	for i := 1; i < n; i++ {
		xi := x[i*lanes : i*lanes+lanes : i*lanes+lanes]
		kv := int(f.lPtr[i])
		for r := f.lRunPtr[i]; r < f.lRunPtr[i+1]; r++ {
			ln := int(f.lRunLen[r])
			base := int(f.lRunCol[r]) * lanes
			for k := 0; k < ln; k++ {
				v := f.lVal[kv+k]
				xj := x[base+k*lanes : base+(k+1)*lanes : base+(k+1)*lanes]
				for l := range xi {
					xi[l] -= v * xj[l]
				}
			}
			kv += ln
		}
	}
	for i := n - 1; i >= 0; i-- {
		xi := x[i*lanes : i*lanes+lanes : i*lanes+lanes]
		kv := int(f.uPtr[i])
		for r := f.uRunPtr[i]; r < f.uRunPtr[i+1]; r++ {
			ln := int(f.uRunLen[r])
			base := int(f.uRunCol[r]) * lanes
			for k := 0; k < ln; k++ {
				v := f.uVal[kv+k]
				xj := x[base+k*lanes : base+(k+1)*lanes : base+(k+1)*lanes]
				for l := range xi {
					xi[l] -= v * xj[l]
				}
			}
			kv += ln
		}
		d := f.invDiag[i]
		for l := range xi {
			xi[l] *= d
		}
	}
}

// WideBatchLanes is the second specialized lane width: twice the
// default, for hosts whose calibration finds the per-lane cost still
// dropping past 8 (the substitution kernels gain instruction-level
// parallelism with width until the lane state outgrows cache).
const WideBatchLanes = 16

// solveBatch8InPlace is solveBatch8 minus the gather pass: the caller
// assembled the right-hand sides in permuted row order, so the
// substitutions run directly in x. On hosts with AVX2 the inner loops
// run in a hand-written vector kernel performing the identical IEEE
// multiplies and subtractions in the identical order (each 8-lane row
// is two 4-lane vectors; lanes are independent, so vectorizing across
// them reorders nothing within a lane) — results are bit-identical to
// this Go walk, as the equivalence tests pin.
func (f *realLU) solveBatch8InPlace(x []float64) {
	if useSolveAVX2 {
		fwdBack8AVX2(f.lVal, f.lCol, f.lPtr, f.uVal, f.uCol, f.uPtr, f.invDiag, x, f.n)
		return
	}
	const B = DefaultBatchLanes
	n := f.n
	for i := 1; i < n; i++ {
		xi := (*[B]float64)(x[i*B : i*B+B])
		x0, x1, x2, x3, x4, x5, x6, x7 := xi[0], xi[1], xi[2], xi[3], xi[4], xi[5], xi[6], xi[7]
		for k := int(f.lPtr[i]); k < int(f.lPtr[i+1]); k++ {
			v := f.lVal[k]
			base := int(f.lCol[k]) * B
			xj := (*[B]float64)(x[base : base+B])
			x0 -= v * xj[0]
			x1 -= v * xj[1]
			x2 -= v * xj[2]
			x3 -= v * xj[3]
			x4 -= v * xj[4]
			x5 -= v * xj[5]
			x6 -= v * xj[6]
			x7 -= v * xj[7]
		}
		xi[0], xi[1], xi[2], xi[3], xi[4], xi[5], xi[6], xi[7] = x0, x1, x2, x3, x4, x5, x6, x7
	}
	for i := n - 1; i >= 0; i-- {
		xi := (*[B]float64)(x[i*B : i*B+B])
		x0, x1, x2, x3, x4, x5, x6, x7 := xi[0], xi[1], xi[2], xi[3], xi[4], xi[5], xi[6], xi[7]
		for k := int(f.uPtr[i]); k < int(f.uPtr[i+1]); k++ {
			v := f.uVal[k]
			base := int(f.uCol[k]) * B
			xj := (*[B]float64)(x[base : base+B])
			x0 -= v * xj[0]
			x1 -= v * xj[1]
			x2 -= v * xj[2]
			x3 -= v * xj[3]
			x4 -= v * xj[4]
			x5 -= v * xj[5]
			x6 -= v * xj[6]
			x7 -= v * xj[7]
		}
		d := f.invDiag[i]
		xi[0], xi[1], xi[2], xi[3], xi[4], xi[5], xi[6], xi[7] = x0*d, x1*d, x2*d, x3*d, x4*d, x5*d, x6*d, x7*d
	}
}

// solveBatch16InPlace is the width-16 register-blocked substitution:
// the same element-wise walk as solveBatch8InPlace with sixteen lane
// accumulators (four 4-lane vectors per row under AVX2). Per lane the
// arithmetic order is identical to every other width.
func (f *realLU) solveBatch16InPlace(x []float64) {
	if useSolveAVX2 {
		fwdBack16AVX2(f.lVal, f.lCol, f.lPtr, f.uVal, f.uCol, f.uPtr, f.invDiag, x, f.n)
		return
	}
	const B = WideBatchLanes
	n := f.n
	// acc is the row's sixteen lane accumulators: a local block, so the
	// compiler knows the column loads cannot alias it (x rows never
	// self-alias — L touches only columns < i, U only columns > i).
	var acc [B]float64
	for i := 1; i < n; i++ {
		xi := (*[B]float64)(x[i*B : i*B+B])
		if f.lPtr[i] == f.lPtr[i+1] {
			continue
		}
		acc = *xi
		for k := int(f.lPtr[i]); k < int(f.lPtr[i+1]); k++ {
			v := f.lVal[k]
			base := int(f.lCol[k]) * B
			xj := (*[B]float64)(x[base : base+B])
			for l := 0; l < B; l++ {
				acc[l] -= v * xj[l]
			}
		}
		*xi = acc
	}
	for i := n - 1; i >= 0; i-- {
		xi := (*[B]float64)(x[i*B : i*B+B])
		acc = *xi
		for k := int(f.uPtr[i]); k < int(f.uPtr[i+1]); k++ {
			v := f.uVal[k]
			base := int(f.uCol[k]) * B
			xj := (*[B]float64)(x[base : base+B])
			for l := 0; l < B; l++ {
				acc[l] -= v * xj[l]
			}
		}
		d := f.invDiag[i]
		for l := 0; l < B; l++ {
			xi[l] = acc[l] * d
		}
	}
}

// solveIntoElementwise is the element-wise reference walk, kept for
// the bit-identity tests.
func (f *realLU) solveIntoElementwise(x, b []float64) {
	n := f.n
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("pdn: solveInto with len(x)=%d len(b)=%d n=%d", len(x), len(b), n))
	}
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	for i := 1; i < n; i++ {
		sum := x[i]
		for k := f.lPtr[i]; k < f.lPtr[i+1]; k++ {
			sum -= f.lVal[k] * x[f.lCol[k]]
		}
		x[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := f.uPtr[i]; k < f.uPtr[i+1]; k++ {
			sum -= f.uVal[k] * x[f.uCol[k]]
		}
		x[i] = sum * f.invDiag[i]
	}
}
