package pdn

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestImpedanceOfResistor(t *testing.T) {
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddResistor("r", src, out, 2.5)
	for _, f := range []float64{1, 1e3, 1e6} {
		z, err := ckt.Impedance(out, f)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(z-2.5) > 1e-9 {
			t.Errorf("Z(%g) = %v, want 2.5", f, z)
		}
	}
}

func TestImpedanceOfCapacitor(t *testing.T) {
	ckt := NewCircuit()
	out := ckt.Node("out")
	ckt.AddCapacitor("c", out, Ground, 1e-6, 0)
	f := 1e3
	z, err := ckt.Impedance(out, f)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (2 * math.Pi * f * 1e-6)
	if math.Abs(cmplx.Abs(z)-want) > 1e-6*want {
		t.Errorf("|Z| = %g, want %g", cmplx.Abs(z), want)
	}
	// Capacitive phase: -90 degrees.
	if ph := cmplx.Phase(z); math.Abs(ph+math.Pi/2) > 1e-9 {
		t.Errorf("phase = %g, want -pi/2", ph)
	}
}

func TestImpedanceOfInductorToGroundViaSource(t *testing.T) {
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddInductor("l", src, out, 1e-9)
	f := 1e6
	z, err := ckt.Impedance(out, f)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * math.Pi * f * 1e-9
	if math.Abs(cmplx.Abs(z)-want) > 1e-9 {
		t.Errorf("|Z| = %g, want %g", cmplx.Abs(z), want)
	}
	if ph := cmplx.Phase(z); math.Abs(ph-math.Pi/2) > 1e-9 {
		t.Errorf("phase = %g, want pi/2", ph)
	}
}

func TestImpedanceTankPeaksAtResonance(t *testing.T) {
	// Parallel LC tank from the observation node: L to source, C to
	// ground; impedance peaks at fr = 1/(2*pi*sqrt(LC)).
	const l, c = 1e-9, 1e-6 // fr ~ 5.03 MHz
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddResistor("r", src, ckt.Node("mid"), 1e-3)
	ckt.AddInductor("l", ckt.Node("mid"), out, l)
	ckt.AddCapacitor("c", out, Ground, c, 0)
	fr := 1 / (2 * math.Pi * math.Sqrt(l*c))
	prof, err := ckt.ImpedanceProfile(out, LogSpace(fr/100, fr*100, 401))
	if err != nil {
		t.Fatal(err)
	}
	peaks := Peaks(prof)
	if len(peaks) == 0 {
		t.Fatal("no impedance peak found")
	}
	if math.Abs(peaks[0].Freq-fr)/fr > 0.05 {
		t.Errorf("peak at %g, want ~%g", peaks[0].Freq, fr)
	}
}

func TestImpedanceProfileEmptyFreqs(t *testing.T) {
	// An empty frequency list is a degenerate but legal request: an
	// empty non-nil profile, no error, and Peaks copes with it.
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddResistor("r", src, out, 1)
	for _, freqs := range [][]float64{nil, {}} {
		prof, err := ckt.ImpedanceProfile(out, freqs)
		if err != nil {
			t.Fatalf("ImpedanceProfile(%v): %v", freqs, err)
		}
		if prof == nil || len(prof) != 0 {
			t.Errorf("ImpedanceProfile(%v) = %v, want empty non-nil", freqs, prof)
		}
		if peaks := Peaks(prof); len(peaks) != 0 {
			t.Errorf("Peaks of empty profile = %v", peaks)
		}
	}
}

func TestImpedanceProfileStopsAtFirstBadFreq(t *testing.T) {
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddResistor("r", src, out, 1)
	if _, err := ckt.ImpedanceProfile(out, []float64{1e3, 0, 1e6}); err == nil {
		t.Error("expected error for profile containing f=0")
	}
}

func TestImpedanceProfileL3BridgeOff(t *testing.T) {
	// With the L3 bridge ablated the circuit stays solvable (the L3
	// hangs off the package through r.l3iso) and the core-grid
	// impedance rises in the mid band: the eDRAM decap no longer damps
	// the cores.
	freqs := LogSpace(100e3, 10e6, 31)
	prof := func(bridge bool) []ImpedancePoint {
		cfg := DefaultZEC12Config()
		cfg.L3Bridge = bridge
		c, nodes := ZEC12(cfg)
		p, err := c.ImpedanceProfile(nodes.Core[0], freqs)
		if err != nil {
			t.Fatalf("L3Bridge=%v: %v", bridge, err)
		}
		return p
	}
	on, off := prof(true), prof(false)
	worse := 0
	for i := range freqs {
		if off[i].Mag() > on[i].Mag() {
			worse++
		}
	}
	if worse < len(freqs)/2 {
		t.Errorf("L3 ablation raised |Z| at only %d/%d mid-band points", worse, len(freqs))
	}
}

func TestDomainOfClusters(t *testing.T) {
	// The two on-die domains: even cores form one, odd cores the
	// other, and ClusterOf agrees with DomainOf everywhere.
	wantDomain := [NumCores]int{0, 1, 0, 1, 0, 1}
	for core := 0; core < NumCores; core++ {
		if got := DomainOf(core); got != wantDomain[core] {
			t.Errorf("DomainOf(%d) = %d, want %d", core, got, wantDomain[core])
		}
		cluster := ClusterOf(core)
		found := false
		for _, m := range cluster {
			if m == core {
				found = true
			}
			if DomainOf(m) != DomainOf(core) {
				t.Errorf("ClusterOf(%d) contains %d from domain %d", core, m, DomainOf(m))
			}
		}
		if !found {
			t.Errorf("ClusterOf(%d) = %v does not contain the core itself", core, cluster)
		}
	}
	if ClusterOf(2) != [3]int{0, 2, 4} || ClusterOf(5) != [3]int{1, 3, 5} {
		t.Errorf("clusters not ascending: %v %v", ClusterOf(2), ClusterOf(5))
	}
}

func TestImpedanceErrors(t *testing.T) {
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddResistor("r", src, out, 1)
	if _, err := ckt.Impedance(out, 0); err == nil {
		t.Error("expected error for f=0")
	}
	if _, err := ckt.Impedance(src, 1e3); err == nil {
		t.Error("expected error for fixed node")
	}
	if _, err := ckt.TransferImpedance(out, src, 1e3); err == nil {
		t.Error("expected error for fixed node in transfer")
	}
	if _, err := ckt.TransferImpedance(out, out, -5); err == nil {
		t.Error("expected error for negative frequency")
	}
}

func TestTransferImpedanceReciprocity(t *testing.T) {
	// Reciprocal RLC networks satisfy Z(a,b) == Z(b,a).
	c, nodes := ZEC12(DefaultZEC12Config())
	for _, f := range []float64{10e3, 2e6, 30e6} {
		zab, err := c.TransferImpedance(nodes.Core[0], nodes.Core[3], f)
		if err != nil {
			t.Fatal(err)
		}
		zba, err := c.TransferImpedance(nodes.Core[3], nodes.Core[0], f)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(zab-zba) > 1e-9*(1+cmplx.Abs(zab)) {
			t.Errorf("reciprocity violated at %g Hz: %v vs %v", f, zab, zba)
		}
	}
}

// Property: self impedance equals transfer impedance with observe ==
// inject, and transfer magnitude never exceeds the larger self
// impedance at the two nodes (passivity of the coupling).
func TestTransferBoundedBySelfProperty(t *testing.T) {
	c, nodes := ZEC12(DefaultZEC12Config())
	f := func(fi uint16, a8, b8 uint8) bool {
		freq := 1e3 * math.Pow(10, float64(fi%400)/100) // 1kHz..10MHz
		a := nodes.Core[int(a8)%NumCores]
		b := nodes.Core[int(b8)%NumCores]
		zaa, err := c.Impedance(a, freq)
		if err != nil {
			return false
		}
		zab, err := c.TransferImpedance(a, b, freq)
		if err != nil {
			return false
		}
		if a == b {
			return cmplx.Abs(zaa-zab) < 1e-12+1e-9*cmplx.Abs(zaa)
		}
		zbb, err := c.Impedance(b, freq)
		if err != nil {
			return false
		}
		lim := math.Max(cmplx.Abs(zaa), cmplx.Abs(zbb))
		return cmplx.Abs(zab) <= lim*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPeaksSortedDescending(t *testing.T) {
	prof := []ImpedancePoint{
		{Freq: 1, Z: 1}, {Freq: 2, Z: 3}, {Freq: 3, Z: 1},
		{Freq: 4, Z: 5}, {Freq: 5, Z: 2}, {Freq: 6, Z: 4}, {Freq: 7, Z: 0},
	}
	peaks := Peaks(prof)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %d, want 3", len(peaks))
	}
	if peaks[0].Freq != 4 || peaks[1].Freq != 6 || peaks[2].Freq != 2 {
		t.Errorf("peak order = %v", peaks)
	}
}

func TestPeaksEmptyAndMonotonic(t *testing.T) {
	if p := Peaks(nil); len(p) != 0 {
		t.Errorf("Peaks(nil) = %v", p)
	}
	mono := []ImpedancePoint{{1, 1}, {2, 2}, {3, 3}}
	if p := Peaks(mono); len(p) != 0 {
		t.Errorf("Peaks(monotonic) = %v", p)
	}
}
