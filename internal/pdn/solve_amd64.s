// AVX2 substitution kernels for the in-place batch solves, plus the
// CPUID/XGETBV feature probe. See solve_amd64.go for the bit-identity
// contract: per lane these perform exactly the scalar walk's IEEE
// operations in the same order — vector lanes are independent
// right-hand sides, VMULPD/VSUBPD are exact IEEE-754 double ops, and
// no FMA contraction is used.

#include "textflag.h"

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fwdBack8AVX2(lVal []float64, lCol, lPtr []int32, uVal []float64,
//                   uCol, uPtr []int32, invDiag, x []float64, n int)
//
// Row i occupies x[i*8 : i*8+8] = 64 bytes = Y0:Y1. Forward pass walks
// rows 1..n-1 accumulating x[i] -= lVal[k]*x[lCol[k]] over the row's L
// nonzeros; back pass walks rows n-1..0 over the U nonzeros and scales
// by invDiag[i]. Column indices are non-negative int32, so MOVL's
// implicit zero extension is exact.
TEXT ·fwdBack8AVX2(SB), NOSPLIT, $0-200
	MOVQ x_base+168(FP), DI
	MOVQ n+192(FP), SI

	// Forward: L factors.
	MOVQ lVal_base+0(FP), R8
	MOVQ lCol_base+24(FP), R9
	MOVQ lPtr_base+48(FP), R10
	MOVQ $1, BX

fwd8_loop:
	CMPQ BX, SI
	JGE  fwd8_done
	MOVL (R10)(BX*4), CX   // k = lPtr[i]
	MOVL 4(R10)(BX*4), DX  // kEnd = lPtr[i+1]
	CMPQ CX, DX
	JEQ  fwd8_next         // empty row: nothing to accumulate
	MOVQ BX, AX
	SHLQ $6, AX            // i*64
	VMOVUPD (DI)(AX*1), Y0
	VMOVUPD 32(DI)(AX*1), Y1

fwd8_inner:
	VBROADCASTSD (R8)(CX*8), Y2
	MOVL (R9)(CX*4), AX    // j = lCol[k]
	SHLQ $6, AX
	VMULPD (DI)(AX*1), Y2, Y3
	VSUBPD Y3, Y0, Y0
	VMULPD 32(DI)(AX*1), Y2, Y3
	VSUBPD Y3, Y1, Y1
	INCQ CX
	CMPQ CX, DX
	JLT  fwd8_inner

	MOVQ BX, AX
	SHLQ $6, AX
	VMOVUPD Y0, (DI)(AX*1)
	VMOVUPD Y1, 32(DI)(AX*1)

fwd8_next:
	INCQ BX
	JMP  fwd8_loop

fwd8_done:
	// Back: U factors, then the reciprocal diagonal scale.
	MOVQ uVal_base+72(FP), R8
	MOVQ uCol_base+96(FP), R9
	MOVQ uPtr_base+120(FP), R10
	MOVQ invDiag_base+144(FP), R11
	MOVQ SI, BX
	DECQ BX                // i = n-1

back8_loop:
	CMPQ BX, $0
	JLT  back8_done
	MOVQ BX, AX
	SHLQ $6, AX
	VMOVUPD (DI)(AX*1), Y0
	VMOVUPD 32(DI)(AX*1), Y1
	MOVL (R10)(BX*4), CX
	MOVL 4(R10)(BX*4), DX
	CMPQ CX, DX
	JEQ  back8_scale

back8_inner:
	VBROADCASTSD (R8)(CX*8), Y2
	MOVL (R9)(CX*4), AX
	SHLQ $6, AX
	VMULPD (DI)(AX*1), Y2, Y3
	VSUBPD Y3, Y0, Y0
	VMULPD 32(DI)(AX*1), Y2, Y3
	VSUBPD Y3, Y1, Y1
	INCQ CX
	CMPQ CX, DX
	JLT  back8_inner

back8_scale:
	VBROADCASTSD (R11)(BX*8), Y2
	VMULPD Y2, Y0, Y0
	VMULPD Y2, Y1, Y1
	MOVQ BX, AX
	SHLQ $6, AX
	VMOVUPD Y0, (DI)(AX*1)
	VMOVUPD Y1, 32(DI)(AX*1)
	DECQ BX
	JMP  back8_loop

back8_done:
	VZEROUPPER
	RET

// func fwdBack16AVX2(lVal []float64, lCol, lPtr []int32, uVal []float64,
//                    uCol, uPtr []int32, invDiag, x []float64, n int)
//
// As fwdBack8AVX2 with 128-byte rows (Y0:Y3 per row).
TEXT ·fwdBack16AVX2(SB), NOSPLIT, $0-200
	MOVQ x_base+168(FP), DI
	MOVQ n+192(FP), SI

	MOVQ lVal_base+0(FP), R8
	MOVQ lCol_base+24(FP), R9
	MOVQ lPtr_base+48(FP), R10
	MOVQ $1, BX

fwd16_loop:
	CMPQ BX, SI
	JGE  fwd16_done
	MOVL (R10)(BX*4), CX
	MOVL 4(R10)(BX*4), DX
	CMPQ CX, DX
	JEQ  fwd16_next
	MOVQ BX, AX
	SHLQ $7, AX            // i*128
	VMOVUPD (DI)(AX*1), Y0
	VMOVUPD 32(DI)(AX*1), Y1
	VMOVUPD 64(DI)(AX*1), Y2
	VMOVUPD 96(DI)(AX*1), Y3

fwd16_inner:
	VBROADCASTSD (R8)(CX*8), Y4
	MOVL (R9)(CX*4), AX
	SHLQ $7, AX
	VMULPD (DI)(AX*1), Y4, Y5
	VSUBPD Y5, Y0, Y0
	VMULPD 32(DI)(AX*1), Y4, Y5
	VSUBPD Y5, Y1, Y1
	VMULPD 64(DI)(AX*1), Y4, Y5
	VSUBPD Y5, Y2, Y2
	VMULPD 96(DI)(AX*1), Y4, Y5
	VSUBPD Y5, Y3, Y3
	INCQ CX
	CMPQ CX, DX
	JLT  fwd16_inner

	MOVQ BX, AX
	SHLQ $7, AX
	VMOVUPD Y0, (DI)(AX*1)
	VMOVUPD Y1, 32(DI)(AX*1)
	VMOVUPD Y2, 64(DI)(AX*1)
	VMOVUPD Y3, 96(DI)(AX*1)

fwd16_next:
	INCQ BX
	JMP  fwd16_loop

fwd16_done:
	MOVQ uVal_base+72(FP), R8
	MOVQ uCol_base+96(FP), R9
	MOVQ uPtr_base+120(FP), R10
	MOVQ invDiag_base+144(FP), R11
	MOVQ SI, BX
	DECQ BX

back16_loop:
	CMPQ BX, $0
	JLT  back16_done
	MOVQ BX, AX
	SHLQ $7, AX
	VMOVUPD (DI)(AX*1), Y0
	VMOVUPD 32(DI)(AX*1), Y1
	VMOVUPD 64(DI)(AX*1), Y2
	VMOVUPD 96(DI)(AX*1), Y3
	MOVL (R10)(BX*4), CX
	MOVL 4(R10)(BX*4), DX
	CMPQ CX, DX
	JEQ  back16_scale

back16_inner:
	VBROADCASTSD (R8)(CX*8), Y4
	MOVL (R9)(CX*4), AX
	SHLQ $7, AX
	VMULPD (DI)(AX*1), Y4, Y5
	VSUBPD Y5, Y0, Y0
	VMULPD 32(DI)(AX*1), Y4, Y5
	VSUBPD Y5, Y1, Y1
	VMULPD 64(DI)(AX*1), Y4, Y5
	VSUBPD Y5, Y2, Y2
	VMULPD 96(DI)(AX*1), Y4, Y5
	VSUBPD Y5, Y3, Y3
	INCQ CX
	CMPQ CX, DX
	JLT  back16_inner

back16_scale:
	VBROADCASTSD (R11)(BX*8), Y4
	VMULPD Y4, Y0, Y0
	VMULPD Y4, Y1, Y1
	VMULPD Y4, Y2, Y2
	VMULPD Y4, Y3, Y3
	MOVQ BX, AX
	SHLQ $7, AX
	VMOVUPD Y0, (DI)(AX*1)
	VMOVUPD Y1, 32(DI)(AX*1)
	VMOVUPD Y2, 64(DI)(AX*1)
	VMOVUPD Y3, 96(DI)(AX*1)
	DECQ BX
	JMP  back16_loop

back16_done:
	VZEROUPPER
	RET
