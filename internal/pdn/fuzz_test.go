package pdn

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSolveBatchInPlace hammers the in-place permuted-RHS substitution
// kernels — single-lane, the width-8 and width-16 register blocks (both
// the vector and pure-Go bodies), and the generic run-plan walk — with
// random sparse diagonally-dominant systems and random right-hand
// sides, and requires every path to reproduce the element-wise
// reference walk bit for bit. The matrix sparsity pattern, values, and
// lane data all derive from the fuzzed bytes, so the corpus explores
// pivoting permutations, empty substitution rows, and denormal-scale
// values the unit tests' fixed seeds never reach.
func FuzzSolveBatchInPlace(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), []byte{0x10, 0x80, 0xf0})
	f.Add(int64(42), uint8(23), uint8(8), []byte{0x00, 0xff, 0x7f, 0x3c})
	f.Add(int64(7), uint8(9), uint8(16), []byte{0xaa, 0x55})
	f.Add(int64(99), uint8(2), uint8(1), []byte{0x01})
	f.Add(int64(13), uint8(17), uint8(5), []byte{0xde, 0xad, 0xbe, 0xef, 0x42})
	savedVec := useSolveAVX2
	defer func() { useSolveAVX2 = savedVec }()
	f.Fuzz(func(t *testing.T, seed int64, nRaw, lanesRaw uint8, data []byte) {
		n := 2 + int(nRaw)%24
		lanes := 1 + int(lanesRaw)%16
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				// Sparsity and magnitude steered by the fuzzed bytes.
				b := byte(0x80)
				if len(data) > 0 {
					b = data[(i*n+j)%len(data)]
				}
				if i != j && b < 0x99 {
					continue
				}
				a[i*n+j] = rng.NormFloat64() * math.Ldexp(1, int(b%16)-8)
			}
			a[i*n+i] += float64(n) + 1
		}
		lu, err := factorReal(a, n)
		if err != nil {
			t.Skip() // singular by construction: nothing to solve
		}
		b := make([]float64, n*lanes)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := make([]float64, n*lanes)
		lu.solveBatchIntoElementwise(want, b, lanes)
		modes := []bool{false}
		if savedVec {
			modes = append(modes, true)
		}
		for _, vec := range modes {
			useSolveAVX2 = vec
			x := permuteRHS(lu, b, lanes)
			lu.solveBatchInPlace(x, lanes)
			for i := range x {
				if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
					t.Fatalf("vec=%v n=%d lanes=%d: slot %d = %x, want %x",
						vec, n, lanes, i, math.Float64bits(x[i]), math.Float64bits(want[i]))
				}
			}
		}
		useSolveAVX2 = savedVec
		// Single-lane in-place path against its own reference.
		wantS := make([]float64, n)
		lu.solveIntoElementwise(wantS, b[:n])
		xs := permuteRHS(lu, b[:n], 1)
		lu.solveInPlace(xs)
		for i := range xs {
			if math.Float64bits(xs[i]) != math.Float64bits(wantS[i]) {
				t.Fatalf("solveInPlace: slot %d = %x, want %x",
					i, math.Float64bits(xs[i]), math.Float64bits(wantS[i]))
			}
		}
	})
}
