package pdn

import "voltnoise/internal/units"

// ZEC12Config parameterizes the zEC12-like PDN preset. The zero value
// is not usable; start from DefaultZEC12Config and override fields.
// The default values are calibrated so that the network's impedance
// profile shows the two broad resonant bands the paper reports: a
// mid-frequency band near 40 kHz (package bulk capacitance against
// board/connector inductance) and the shifted "first droop" band near
// 2 MHz (deep-trench eDRAM die capacitance against the package feed
// inductance). See DESIGN.md for the calibration targets.
type ZEC12Config struct {
	// Vnom is the VRM output voltage in volts.
	Vnom float64

	// Motherboard stage.
	RBoard    float64 // series resistance VRM -> board (ohms)
	LBoard    float64 // series inductance VRM -> board (henries)
	CBulk     float64 // bulk capacitance at the board node (farads)
	CBulkESR  float64 // bulk capacitor ESR (ohms)
	RPkg      float64 // series resistance board -> package (ohms)
	LPkg      float64 // series inductance board -> package (henries)
	CPkg      float64 // package decap (farads)
	CPkgESR   float64 // package decap ESR (ohms)
	RDomain   float64 // series resistance package -> each on-die domain (ohms)
	LDomain   float64 // series inductance package -> each on-die domain (henries)
	CDomain   float64 // decap at each domain node (farads)
	RCoreFeed float64 // on-die resistance domain -> core node (ohms)
	LCoreFeed float64 // on-die inductance domain -> core node (henries)
	CCore     float64 // local decap at each core node (farads)
	RCoreLink float64 // on-die grid resistance between adjacent cores in a cluster (ohms)
	RCoreL3   float64 // on-die grid resistance core -> L3 node (ohms)

	// DeepTrenchFactor scales ALL on-die capacitance (core, domain and
	// L3 decap). 1.0 is the calibrated zEC12-like value with
	// deep-trench technology installed; the paper states deep trench
	// "augmented the on-chip capacitance by 40x", so 1/40 models the
	// pre-deep-trench generation it compares against, moving the first
	// droop back above 5 MHz (historically 30-100 MHz).
	DeepTrenchFactor float64
	// CL3 is the L3 eDRAM deep-trench capacitance at factor 1.0.
	CL3 float64
	// L3Bridge controls whether the L3 node connects to the core grid.
	// Disabling it is an ablation: the damping/clustering the paper
	// attributes to the L3 disappears.
	L3Bridge bool
}

// DefaultZEC12Config returns the calibrated preset configuration.
func DefaultZEC12Config() ZEC12Config {
	return ZEC12Config{
		Vnom: 1.05,

		RBoard:   0.06e-3,
		LBoard:   0.8e-9,
		CBulk:    62.5e-3,
		CBulkESR: 0.6e-3,

		RPkg:    0.08e-3,
		LPkg:    0.5e-9,
		CPkg:    13e-3,
		CPkgESR: 0.04e-3,

		RDomain: 0.08e-3,
		LDomain: 48e-12,
		CDomain: 12.5e-6,

		RCoreFeed: 0.15e-3,
		LCoreFeed: 2e-12,
		CCore:     12.5e-6,
		RCoreLink: 0.02e-3,
		RCoreL3:   0.30e-3,

		DeepTrenchFactor: 1.0,
		CL3:              150e-6,
		L3Bridge:         true,
	}
}

// NumCores is the number of cores on the zEC12 CP chip.
const NumCores = 6

// ZEC12Nodes names the externally interesting nodes of the preset.
type ZEC12Nodes struct {
	// VRM is the fixed-voltage regulator output node.
	VRM NodeID
	// Board and Pkg are the motherboard and package distribution nodes.
	Board, Pkg NodeID
	// Domain[0] feeds cores {0,2,4} (the chip's upper row); Domain[1]
	// feeds cores {1,3,5} (lower row). The split mirrors the paper's
	// two on-chip voltage domains sharing a single package domain.
	Domain [2]NodeID
	// Core[i] is the supply node sensed by core i's skitter macro.
	Core [NumCores]NodeID
	// L3 is the eDRAM L3 node between the clusters.
	L3 NodeID
}

// DomainOf returns the on-die voltage domain index of a core:
// 0 for cores {0,2,4}, 1 for cores {1,3,5}.
func DomainOf(core int) int { return core % 2 }

// ClusterOf returns the cores sharing core's domain, in ascending
// order, e.g. ClusterOf(2) == [0 2 4].
func ClusterOf(core int) [3]int {
	d := DomainOf(core)
	return [3]int{d, d + 2, d + 4}
}

// ZEC12 builds the zEC12-like PDN. The returned nodes identify the
// probe/injection points used by the higher layers.
func ZEC12(cfg ZEC12Config) (*Circuit, ZEC12Nodes) {
	mustPositive := func(name string, v float64) {
		if v <= 0 {
			panic("pdn: ZEC12 config field " + name + " must be positive")
		}
	}
	mustPositive("Vnom", cfg.Vnom)
	mustPositive("DeepTrenchFactor", cfg.DeepTrenchFactor)

	c := NewCircuit()
	var n ZEC12Nodes
	n.VRM = c.Node("vrm")
	n.Board = c.Node("board")
	n.Pkg = c.Node("pkg")
	n.Domain[0] = c.Node("domA")
	n.Domain[1] = c.Node("domB")
	for i := 0; i < NumCores; i++ {
		n.Core[i] = c.Node(coreNodeName(i))
	}
	n.L3 = c.Node("l3")

	c.FixNode(n.VRM, cfg.Vnom)

	// VRM --R--> board.mid --L--> board --R,L--> package.
	bmid := c.Node("board.mid")
	c.AddResistor("r.board", n.VRM, bmid, cfg.RBoard)
	c.AddInductor("l.board", bmid, n.Board, cfg.LBoard)
	c.AddCapacitor("c.bulk", n.Board, Ground, cfg.CBulk, cfg.CBulkESR)

	pmid := c.Node("pkg.mid")
	c.AddResistor("r.pkg", n.Board, pmid, cfg.RPkg)
	c.AddInductor("l.pkg", pmid, n.Pkg, cfg.LPkg)
	c.AddCapacitor("c.pkg", n.Pkg, Ground, cfg.CPkg, cfg.CPkgESR)

	// Package -> the two on-die domains.
	for d := 0; d < 2; d++ {
		name := string(rune('A' + d))
		dmid := c.Node("dom" + name + ".mid")
		c.AddResistor("r.dom"+name, n.Pkg, dmid, cfg.RDomain)
		c.AddInductor("l.dom"+name, dmid, n.Domain[d], cfg.LDomain)
		c.AddCapacitor("c.dom"+name, n.Domain[d], Ground, cfg.CDomain*cfg.DeepTrenchFactor, 0)
	}

	// Domain -> cores; on-die grid links within each cluster.
	for i := 0; i < NumCores; i++ {
		d := DomainOf(i)
		fmid := c.Node(coreNodeName(i) + ".mid")
		c.AddResistor("r.feed"+coreSuffix(i), n.Domain[d], fmid, cfg.RCoreFeed)
		c.AddInductor("l.feed"+coreSuffix(i), fmid, n.Core[i], cfg.LCoreFeed)
		c.AddCapacitor("c.core"+coreSuffix(i), n.Core[i], Ground, cfg.CCore*cfg.DeepTrenchFactor, 0)
	}
	// Row neighbours: 0-2, 2-4 (upper), 1-3, 3-5 (lower).
	c.AddResistor("r.link02", n.Core[0], n.Core[2], cfg.RCoreLink)
	c.AddResistor("r.link24", n.Core[2], n.Core[4], cfg.RCoreLink)
	c.AddResistor("r.link13", n.Core[1], n.Core[3], cfg.RCoreLink)
	c.AddResistor("r.link35", n.Core[3], n.Core[5], cfg.RCoreLink)

	// The L3 sits between the rows: every core sees it through the
	// on-die grid, and it carries the deep-trench eDRAM decap.
	c.AddCapacitor("c.l3", n.L3, Ground, cfg.CL3*cfg.DeepTrenchFactor, 0)
	if cfg.L3Bridge {
		for i := 0; i < NumCores; i++ {
			c.AddResistor("r.l3"+coreSuffix(i), n.Core[i], n.L3, cfg.RCoreL3)
		}
	} else {
		// Keep the L3 node connected so the DC solve stays regular,
		// but through a resistance high enough to remove its damping
		// role entirely.
		c.AddResistor("r.l3iso", n.Pkg, n.L3, 1.0)
	}

	return c, n
}

func coreNodeName(i int) string { return "core" + string(rune('0'+i)) }
func coreSuffix(i int) string   { return string(rune('0' + i)) }

// ResonantEstimates returns first-order analytic estimates of the two
// resonant bands the preset is calibrated for: the mid-frequency band
// (package decap against its feed inductance) and the first droop
// (total on-die capacitance against the parallel domain feeds). The
// measured impedance peaks sit near these estimates; the deltas come
// from the surrounding network (board inductance participates in the
// mid band, the grid resistances de-tune the droop slightly).
func (cfg ZEC12Config) ResonantEstimates() (midHz, droopHz float64) {
	mid := units.ResonantFrequency(units.Henry(cfg.LPkg), units.Farad(cfg.CPkg))
	dieC := cfg.DeepTrenchFactor * (float64(NumCores)*cfg.CCore + 2*cfg.CDomain + cfg.CL3)
	droop := units.ResonantFrequency(units.Henry(cfg.LDomain/2), units.Farad(dieC))
	return float64(mid), float64(droop)
}
