package pdn

import (
	"math"
	"testing"
)

func TestNodeCreationAndLookup(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	b := c.Node("b")
	if a == b {
		t.Fatal("distinct names map to same node")
	}
	if got := c.Node("a"); got != a {
		t.Errorf("Node(a) second call = %d, want %d", got, a)
	}
	if c.NodeName(a) != "a" {
		t.Errorf("NodeName = %q", c.NodeName(a))
	}
	if c.NodeName(Ground) != "gnd" {
		t.Errorf("ground name = %q", c.NodeName(Ground))
	}
	if c.NumNodes() != 3 {
		t.Errorf("NumNodes = %d", c.NumNodes())
	}
}

func TestFixNode(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	c.FixNode(a, 1.05)
	v, ok := c.FixedVoltage(a)
	if !ok || v != 1.05 {
		t.Errorf("FixedVoltage = %g,%v", v, ok)
	}
	if v, ok := c.FixedVoltage(Ground); !ok || v != 0 {
		t.Errorf("ground FixedVoltage = %g,%v", v, ok)
	}
	if _, ok := c.FixedVoltage(c.Node("free")); ok {
		t.Error("free node reported fixed")
	}
}

func TestFixGroundPanics(t *testing.T) {
	c := NewCircuit()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.FixNode(Ground, 1)
}

func TestElementValidation(t *testing.T) {
	c := NewCircuit()
	a, b := c.Node("a"), c.Node("b")
	cases := map[string]func(){
		"zero R":        func() { c.AddResistor("r", a, b, 0) },
		"negative L":    func() { c.AddInductor("l", a, b, -1) },
		"zero C":        func() { c.AddCapacitor("c", a, b, 0, 0) },
		"negative ESR":  func() { c.AddCapacitor("c", a, b, 1e-6, -1) },
		"self loop":     func() { c.AddResistor("r", a, a, 1) },
		"empty name":    func() { c.AddResistor("", a, b, 1) },
		"load on gnd":   func() { c.AddLoad("l", Ground, func(float64) float64 { return 0 }) },
		"nil load func": func() { c.AddLoad("l", a, nil) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCapacitorESRCreatesInternalNode(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	before := c.NumNodes()
	c.AddCapacitor("cap", a, Ground, 1e-6, 1e-3)
	if c.NumNodes() != before+1 {
		t.Errorf("ESR cap should add one internal node, got %d new", c.NumNodes()-before)
	}
	if c.NumElements() != 2 {
		t.Errorf("ESR cap should expand to 2 elements, got %d", c.NumElements())
	}
	// Without ESR: single element, no extra node.
	c2 := NewCircuit()
	a2 := c2.Node("a")
	c2.AddCapacitor("cap", a2, Ground, 1e-6, 0)
	if c2.NumElements() != 1 || c2.NumNodes() != 2 {
		t.Errorf("ideal cap: %d elements, %d nodes", c2.NumElements(), c2.NumNodes())
	}
}

func TestLoadsReturned(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	l := c.AddLoad("core", a, func(float64) float64 { return 2 })
	if len(c.Loads()) != 1 || c.Loads()[0] != l {
		t.Fatalf("Loads = %v", c.Loads())
	}
	if l.Name != "core" || l.Node != a || l.Current(0) != 2 {
		t.Errorf("load fields wrong: %+v", l)
	}
}

func TestUnknownsExcludesGroundAndFixed(t *testing.T) {
	c := NewCircuit()
	a, b := c.Node("a"), c.Node("b")
	c.Node("c")
	c.FixNode(a, 1)
	idx, n := c.unknowns()
	if n != 2 {
		t.Fatalf("unknowns = %d, want 2", n)
	}
	if idx[Ground] != -1 || idx[a] != -1 {
		t.Errorf("ground/fixed not excluded: %v", idx)
	}
	if idx[b] < 0 {
		t.Errorf("free node excluded: %v", idx)
	}
}

func TestLogSpace(t *testing.T) {
	v := LogSpace(1e3, 1e6, 4)
	want := []float64{1e3, 1e4, 1e5, 1e6}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-6*want[i] {
			t.Errorf("LogSpace[%d] = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestLogSpaceValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"lo<=0":  func() { LogSpace(0, 10, 3) },
		"hi<=lo": func() { LogSpace(10, 10, 3) },
		"n<2":    func() { LogSpace(1, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRealLUSolvesKnownSystem(t *testing.T) {
	// [3 1; 1 2] x = [5; 5] -> x = [1; 2]
	a := []float64{3, 1, 1, 2}
	lu, err := factorReal(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	lu.solveInto(x, []float64{5, 5})
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestRealLUPivoting(t *testing.T) {
	a := []float64{0, 1, 1, 0}
	lu, err := factorReal(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	lu.solveInto(x, []float64{7, 3})
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-7) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestRealLUSingular(t *testing.T) {
	if _, err := factorReal([]float64{1, 2, 2, 4}, 2); err == nil {
		t.Error("expected singular error")
	}
}
