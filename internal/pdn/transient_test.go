package pdn

import (
	"math"
	"strings"
	"testing"
)

// rcCircuit builds: src(1V fixed) --R--> out, C from out to ground.
func rcCircuit(r, c float64) (*Circuit, NodeID) {
	ckt := NewCircuit()
	src := ckt.Node("src")
	out := ckt.Node("out")
	ckt.FixNode(src, 1.0)
	ckt.AddResistor("r", src, out, r)
	ckt.AddCapacitor("c", out, Ground, c, 0)
	return ckt, out
}

func TestTransientValidation(t *testing.T) {
	ckt, _ := rcCircuit(1, 1e-6)
	if _, err := NewTransient(ckt, 0); err == nil {
		t.Error("expected error for zero dt")
	}
	if _, err := NewTransient(ckt, -1e-9); err == nil {
		t.Error("expected error for negative dt")
	}
	// Circuit with no unknowns.
	empty := NewCircuit()
	if _, err := NewTransient(empty, 1e-9); err == nil {
		t.Error("expected error for no unknowns")
	}
}

func TestDCOperatingPoint(t *testing.T) {
	// Voltage divider: 1V -- 1 Ohm -- out -- 1 Ohm -- gnd, plus a cap
	// on out. DC solution: 0.5V.
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddResistor("r1", src, out, 1)
	ckt.AddResistor("r2", out, Ground, 1)
	ckt.AddCapacitor("c", out, Ground, 1e-6, 0)
	tr, err := NewTransient(ckt, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if v := tr.Voltage(out); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("DC voltage = %g, want 0.5", v)
	}
	// With no excitation the state must hold steady.
	for i := 0; i < 100; i++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if v := tr.Voltage(out); math.Abs(v-0.5) > 1e-9 {
		t.Errorf("steady state drifted to %g", v)
	}
}

func TestDCWithLoad(t *testing.T) {
	// 1V --0.1 Ohm--> out with a 2A constant load: IR drop 0.2V.
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddResistor("r", src, out, 0.1)
	ckt.AddCapacitor("c", out, Ground, 1e-6, 0)
	ckt.AddLoad("load", out, func(float64) float64 { return 2 })
	tr, err := NewTransient(ckt, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if v := tr.Voltage(out); math.Abs(v-0.8) > 1e-9 {
		t.Errorf("DC with load = %g, want 0.8", v)
	}
}

func TestRCStepResponseTimeConstant(t *testing.T) {
	// Start in DC steady state with a 1A load, then drop the load to
	// 0 at t=0: the output relaxes to 1V with tau = RC.
	const r, c = 0.5, 2e-6 // tau = 1e-6
	ckt, out := rcCircuit(r, c)
	ckt.AddLoad("load", out, func(t float64) float64 {
		if t <= 0 {
			return 1
		}
		return 0
	})
	tr, err := NewTransient(ckt, 5e-9)
	if err != nil {
		t.Fatal(err)
	}
	v0 := tr.Voltage(out)
	if math.Abs(v0-0.5) > 1e-9 {
		t.Fatalf("initial = %g, want 0.5", v0)
	}
	// After one tau the response covers 1-1/e of the step.
	const tau = r * c
	if err := tr.RunUntil(tau); err != nil {
		t.Fatal(err)
	}
	want := 1 - 0.5*math.Exp(-1)
	if got := tr.Voltage(out); math.Abs(got-want) > 0.002 {
		t.Errorf("v(tau) = %g, want %g", got, want)
	}
	// After many tau it settles at 1V.
	if err := tr.RunUntil(10 * tau); err != nil {
		t.Fatal(err)
	}
	if got := tr.Voltage(out); math.Abs(got-1) > 1e-3 {
		t.Errorf("v(10tau) = %g, want 1", got)
	}
}

func TestRLCRingingFrequency(t *testing.T) {
	// Series RLC from a fixed source; step the load and verify the
	// ring frequency is ~1/(2*pi*sqrt(LC)).
	const (
		l = 1e-9  // 1 nH
		c = 25e-6 // 25 uF -> fr = 1.007 MHz
	)
	ckt := NewCircuit()
	src, mid, out := ckt.Node("src"), ckt.Node("mid"), ckt.Node("out")
	ckt.FixNode(src, 1)
	ckt.AddResistor("r", src, mid, 0.2e-3) // underdamped
	ckt.AddInductor("l", mid, out, l)
	ckt.AddCapacitor("c", out, Ground, c, 0)
	ckt.AddLoad("load", out, func(t float64) float64 {
		if t < 0.1e-6 {
			return 0
		}
		return 10
	})
	tr, err := NewTransient(ckt, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := tr.Run(6e-6, []NodeID{out})
	if err != nil {
		t.Fatal(err)
	}
	ring := traces[0].Slice(200, traces[0].Len()) // skip the step itself
	period := ring.DominantPeriod()
	wantPeriod := 2 * math.Pi * math.Sqrt(l*c)
	if math.Abs(period-wantPeriod)/wantPeriod > 0.15 {
		t.Errorf("ring period = %g, want ~%g", period, wantPeriod)
	}
}

func TestTrapezoidalStability(t *testing.T) {
	// A very lightly damped tank integrated far past its period must
	// stay bounded (A-stability of the trapezoidal rule).
	ckt := NewCircuit()
	src, out := ckt.Node("src"), ckt.Node("out")
	ckt.FixNode(src, 1)
	mid := ckt.Node("mid")
	ckt.AddResistor("r", src, mid, 1e-6)
	ckt.AddInductor("l", mid, out, 1e-9)
	ckt.AddCapacitor("c", out, Ground, 1e-6, 0)
	ckt.AddLoad("load", out, func(t float64) float64 {
		if t > 0 {
			return 5
		}
		return 0
	})
	tr, err := NewTransient(ckt, 50e-9) // coarse step vs 0.2 us period
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
		if v := tr.Voltage(out); math.Abs(v) > 100 {
			t.Fatalf("unbounded response %g at step %d", v, i)
		}
	}
}

func TestRunRecordsProbes(t *testing.T) {
	ckt, out := rcCircuit(1, 1e-6)
	tr, err := NewTransient(ckt, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := tr.Run(1e-6, []NodeID{out})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	if traces[0].Len() != 101 {
		t.Errorf("trace length = %d, want 101", traces[0].Len())
	}
	if traces[0].Dt != 1e-8 {
		t.Errorf("trace dt = %g", traces[0].Dt)
	}
	if math.Abs(tr.Time()-1e-6) > 1e-12 {
		t.Errorf("time after run = %g", tr.Time())
	}
	// Negative duration is an error.
	if _, err := tr.Run(-1, nil); err == nil {
		t.Error("expected error for negative duration")
	}
}

func TestRunUntilAdvancesToTime(t *testing.T) {
	ckt, _ := rcCircuit(1, 1e-6)
	tr, err := NewTransient(ckt, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.RunUntil(5e-7); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Time()-5e-7) > 1e-8 {
		t.Errorf("time = %g, want 5e-7", tr.Time())
	}
}

func TestVoltageOnFixedAndGround(t *testing.T) {
	ckt, out := rcCircuit(1, 1e-6)
	tr, err := NewTransient(ckt, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if v := tr.Voltage(Ground); v != 0 {
		t.Errorf("ground = %g", v)
	}
	src := ckt.Node("src")
	if v := tr.Voltage(src); v != 1 {
		t.Errorf("fixed source = %g", v)
	}
	_ = out
}

// Energy sanity: with a resistive-only divider under constant load the
// solution is time independent and matches Ohm's law exactly.
func TestResistiveNetworkExactness(t *testing.T) {
	ckt := NewCircuit()
	src := ckt.Node("src")
	n1 := ckt.Node("n1")
	ckt.FixNode(src, 2)
	ckt.AddResistor("r1", src, n1, 3)
	ckt.AddResistor("r2", n1, Ground, 6)
	// A capacitor keeps the matrix non-singular goalwise but the node
	// is already determined; add load for current check.
	ckt.AddCapacitor("c", n1, Ground, 1e-9, 0)
	tr, err := NewTransient(ckt, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 * 6 / 9
	for i := 0; i < 50; i++ {
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Voltage(n1); math.Abs(got-want) > 1e-9 {
		t.Errorf("divider voltage = %g, want %g", got, want)
	}
	// Branch current through r1 = (2 - v)/3.
	if got := tr.BranchCurrent(0); math.Abs(got-(2-want)/3) > 1e-9 {
		t.Errorf("branch current = %g", got)
	}
}

func TestChargeConservationRCStep(t *testing.T) {
	// Integrate capacitor current over a full charge transient; the
	// accumulated charge must equal C * deltaV.
	const r, c = 1.0, 1e-6
	ckt, out := rcCircuit(r, c)
	ckt.AddLoad("load", out, func(t float64) float64 {
		if t <= 0 {
			return 0.5
		}
		return 0
	})
	tr, err := NewTransient(ckt, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	v0 := tr.Voltage(out)
	charge := 0.0
	// Element 1 is the capacitor (r added first).
	for tr.Time() < 10*r*c {
		prev := tr.BranchCurrent(1)
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
		charge += 0.5 * (prev + tr.BranchCurrent(1)) * tr.Dt()
	}
	dv := tr.Voltage(out) - v0
	if math.Abs(charge-c*dv) > 1e-3*math.Abs(c*dv) {
		t.Errorf("accumulated charge %g, want %g", charge, c*dv)
	}
}

func TestStepDetectsDivergence(t *testing.T) {
	// Failure injection: a load that returns NaN poisons the solve and
	// must surface as an explicit integration error, not silent NaNs.
	ckt, out := rcCircuit(1, 1e-6)
	ckt.AddLoad("poison", out, func(tm float64) float64 {
		if tm > 0.5e-6 {
			return math.NaN()
		}
		return 0
	})
	tr, err := NewTransient(ckt, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	err = tr.RunUntil(2e-6)
	if err == nil {
		t.Fatal("NaN load did not fail the integration")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestRunStopsAtDivergence(t *testing.T) {
	ckt, out := rcCircuit(1, 1e-6)
	ckt.AddLoad("poison", out, func(tm float64) float64 { return math.Inf(1) })
	tr, err := NewTransient(ckt, 1e-8)
	if err == nil {
		// DC solve may already blow up; if not, the first step must.
		if _, err := tr.Run(1e-6, []NodeID{out}); err == nil {
			t.Fatal("infinite load survived the run")
		}
	}
}
