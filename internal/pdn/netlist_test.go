package pdn

import (
	"math"
	"strings"
	"testing"
)

func TestNetlistRendersAllElements(t *testing.T) {
	c, nodes := ZEC12(DefaultZEC12Config())
	c.AddLoad("core0", nodes.Core[0], func(float64) float64 { return 1 })
	deck := c.Netlist("zec12")
	if !strings.HasPrefix(deck, "* zec12\n") {
		t.Errorf("missing title: %q", deck[:40])
	}
	s := c.Summary()
	for prefix, count := range map[string]int{"R": s.Resistors, "L": s.Inductors, "C": s.Capacitors} {
		got := 0
		for _, line := range strings.Split(deck, "\n") {
			if strings.HasPrefix(line, prefix) && len(line) > 1 && line[1] >= '0' && line[1] <= '9' {
				got++
			}
		}
		if got != count {
			t.Errorf("%s lines = %d, want %d", prefix, got, count)
		}
	}
	if !strings.Contains(deck, "V1 vrm 0 DC") {
		t.Error("VRM source missing")
	}
	if !strings.Contains(deck, `* load "core0"`) {
		t.Error("load comment missing")
	}
	if !strings.HasSuffix(deck, ".end\n") {
		t.Error("missing .end")
	}
	// Node names are deck-safe: the ESR internal nodes contain dots in
	// Go but none may appear in the deck.
	for _, line := range strings.Split(deck, "\n") {
		if strings.HasPrefix(line, "*") || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 3 && strings.Contains(fields[1]+fields[2], ".") {
			t.Errorf("unsafe node name in %q", line)
		}
	}
}

func TestSummaryCounts(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	c.FixNode(a, 1)
	b := c.Node("b")
	c.AddResistor("r", a, b, 1)
	c.AddInductor("l", a, b, 1e-9)
	c.AddCapacitor("c1", b, Ground, 2e-6, 0)
	c.AddCapacitor("c2", b, Ground, 3e-6, 1e-3) // ESR adds a resistor
	c.AddLoad("x", b, func(float64) float64 { return 0 })
	s := c.Summary()
	if s.Resistors != 2 || s.Inductors != 1 || s.Capacitors != 2 || s.Loads != 1 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.TotalCapacitance-5e-6) > 1e-18 {
		t.Errorf("total capacitance = %g", s.TotalCapacitance)
	}
}
