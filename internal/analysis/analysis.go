// Package analysis provides the statistics behind the paper's
// inter-core noise propagation study (Section VI): Pearson correlation
// matrices over per-core noise readings, agglomerative clustering to
// expose the core clusters the chip layout creates, and the workload
// mapping enumeration helpers the mapping studies are built on.
package analysis

import (
	"fmt"
	"math"
)

// Correlation returns the Pearson correlation coefficient of x and y.
// It panics when the lengths differ or fewer than two samples are
// given; it returns NaN when either series is constant.
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("analysis: correlation of series with lengths %d and %d", len(x), len(y)))
	}
	if len(x) < 2 {
		panic("analysis: correlation needs at least 2 samples")
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrelationMatrix computes the pairwise correlation of the columns
// of samples: samples[i][j] is observation i of variable j. All rows
// must have equal length.
func CorrelationMatrix(samples [][]float64) [][]float64 {
	if len(samples) < 2 {
		panic("analysis: correlation matrix needs at least 2 observations")
	}
	vars := len(samples[0])
	cols := make([][]float64, vars)
	for j := 0; j < vars; j++ {
		cols[j] = make([]float64, len(samples))
	}
	for i, row := range samples {
		if len(row) != vars {
			panic(fmt.Sprintf("analysis: ragged sample row %d", i))
		}
		for j, v := range row {
			cols[j][i] = v
		}
	}
	out := make([][]float64, vars)
	for a := 0; a < vars; a++ {
		out[a] = make([]float64, vars)
		out[a][a] = 1
	}
	for a := 0; a < vars; a++ {
		for b := a + 1; b < vars; b++ {
			c := Correlation(cols[a], cols[b])
			out[a][b] = c
			out[b][a] = c
		}
	}
	return out
}

// Cluster performs average-linkage agglomerative clustering of n items
// using the similarity matrix sim (higher = more similar), stopping
// when k clusters remain. It returns the clusters as sorted index
// slices, ordered by their smallest member.
func Cluster(sim [][]float64, k int) [][]int {
	n := len(sim)
	if k < 1 || k > n {
		panic(fmt.Sprintf("analysis: cluster count %d for %d items", k, n))
	}
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	avgSim := func(a, b []int) float64 {
		s := 0.0
		for _, i := range a {
			for _, j := range b {
				s += sim[i][j]
			}
		}
		return s / float64(len(a)*len(b))
	}
	for len(clusters) > k {
		bi, bj, best := -1, -1, math.Inf(-1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if s := avgSim(clusters[i], clusters[j]); s > best {
					best, bi, bj = s, i, j
				}
			}
		}
		merged := append(append([]int{}, clusters[bi]...), clusters[bj]...)
		sortInts(merged)
		next := make([][]int, 0, len(clusters)-1)
		for idx, c := range clusters {
			if idx != bi && idx != bj {
				next = append(next, c)
			}
		}
		clusters = append(next, merged)
	}
	// Order clusters by smallest member for deterministic output.
	for i := 1; i < len(clusters); i++ {
		for j := i; j > 0 && clusters[j][0] < clusters[j-1][0]; j-- {
			clusters[j], clusters[j-1] = clusters[j-1], clusters[j]
		}
	}
	return clusters
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Combinations invokes fn with every k-subset of {0..n-1}, in
// lexicographic order. The slice passed to fn is reused; copy it to
// retain.
func Combinations(n, k int, fn func([]int)) {
	if k < 0 || k > n {
		panic(fmt.Sprintf("analysis: combinations C(%d,%d)", n, k))
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Assignments invokes fn with every assignment of one of m labels to
// each of n slots (m^n total), in odometer order. The slice passed to
// fn is reused.
func Assignments(n, m int, fn func([]int)) {
	if n < 0 || m < 1 {
		panic(fmt.Sprintf("analysis: assignments %d^%d", m, n))
	}
	a := make([]int, n)
	for {
		fn(a)
		pos := n - 1
		for pos >= 0 {
			a[pos]++
			if a[pos] < m {
				break
			}
			a[pos] = 0
			pos--
		}
		if pos < 0 {
			return
		}
	}
}

// Binomial returns C(n, k).
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1
	for i := 0; i < k; i++ {
		out = out * (n - i) / (i + 1)
	}
	return out
}

// MeanStd returns the mean and population standard deviation of v.
func MeanStd(v []float64) (mean, std float64) {
	if len(v) == 0 {
		panic("analysis: MeanStd of empty slice")
	}
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for _, x := range v {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(v)))
}
