package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCorrelationKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Correlation(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %g", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Correlation(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %g", got)
	}
	// Orthogonal series.
	a := []float64{1, -1, 1, -1}
	b := []float64{1, 1, -1, -1}
	if got := Correlation(a, b); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal correlation = %g", got)
	}
}

func TestCorrelationEdgeCases(t *testing.T) {
	if !math.IsNaN(Correlation([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Error("constant series should give NaN")
	}
	for name, fn := range map[string]func(){
		"length mismatch": func() { Correlation([]float64{1}, []float64{1, 2}) },
		"too short":       func() { Correlation([]float64{1}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCorrelationMatrix(t *testing.T) {
	samples := [][]float64{
		{1, 2, -1},
		{2, 4, -2},
		{3, 6, -3},
		{4, 8, -4.5},
	}
	m := CorrelationMatrix(samples)
	if len(m) != 3 {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := 0; i < 3; i++ {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d] = %g", i, m[i][i])
		}
	}
	if math.Abs(m[0][1]-1) > 1e-12 {
		t.Errorf("corr(0,1) = %g, want 1", m[0][1])
	}
	if m[0][2] >= 0 || m[0][2] < -1 {
		t.Errorf("corr(0,2) = %g, want in [-1,0)", m[0][2])
	}
	if m[0][1] != m[1][0] {
		t.Error("matrix not symmetric")
	}
}

func TestCorrelationMatrixValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"too few rows": func() { CorrelationMatrix([][]float64{{1, 2}}) },
		"ragged":       func() { CorrelationMatrix([][]float64{{1, 2}, {1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestClusterTwoGroups(t *testing.T) {
	// Items 0,2,4 mutually similar; 1,3,5 mutually similar — the
	// paper's cluster structure.
	n := 6
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			switch {
			case i == j:
				sim[i][j] = 1
			case i%2 == j%2:
				sim[i][j] = 0.97
			default:
				sim[i][j] = 0.92
			}
		}
	}
	clusters := Cluster(sim, 2)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	want := [][]int{{0, 2, 4}, {1, 3, 5}}
	for i := range want {
		if len(clusters[i]) != 3 {
			t.Fatalf("cluster %d = %v", i, clusters[i])
		}
		for j := range want[i] {
			if clusters[i][j] != want[i][j] {
				t.Errorf("cluster %d = %v, want %v", i, clusters[i], want[i])
			}
		}
	}
}

func TestClusterBounds(t *testing.T) {
	sim := [][]float64{{1, 0}, {0, 1}}
	if got := Cluster(sim, 2); len(got) != 2 {
		t.Errorf("k=n clusters = %v", got)
	}
	if got := Cluster(sim, 1); len(got) != 1 || len(got[0]) != 2 {
		t.Errorf("k=1 clusters = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	Cluster(sim, 0)
}

func TestCombinations(t *testing.T) {
	var got [][]int
	Combinations(4, 2, func(c []int) {
		got = append(got, append([]int{}, c...))
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("C(4,2) produced %d combos", len(got))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("combo %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	// k == 0: a single empty combination.
	count := 0
	Combinations(3, 0, func(c []int) { count++ })
	if count != 1 {
		t.Errorf("C(3,0) invoked %d times", count)
	}
}

func TestAssignments(t *testing.T) {
	count := 0
	seen := map[[3]int]bool{}
	Assignments(3, 2, func(a []int) {
		count++
		seen[[3]int{a[0], a[1], a[2]}] = true
	})
	if count != 8 {
		t.Errorf("2^3 assignments = %d", count)
	}
	if len(seen) != 8 {
		t.Errorf("assignments not distinct: %d", len(seen))
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct{ n, k, want int }{
		{6, 3, 20}, {6, 0, 1}, {6, 6, 1}, {6, 7, 0}, {6, -1, 0}, {10, 5, 252},
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("C(%d,%d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 || math.Abs(std-2) > 1e-12 {
		t.Errorf("MeanStd = %g, %g", mean, std)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty MeanStd should panic")
		}
	}()
	MeanStd(nil)
}

// Property: correlation is symmetric and bounded in [-1, 1].
func TestCorrelationProperty(t *testing.T) {
	f := func(raw [8]int8, raw2 [8]int8) bool {
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := range x {
			x[i] = float64(raw[i])
			y[i] = float64(raw2[i])
		}
		c1 := Correlation(x, y)
		c2 := Correlation(y, x)
		if math.IsNaN(c1) {
			return math.IsNaN(c2)
		}
		return math.Abs(c1-c2) < 1e-12 && c1 >= -1-1e-9 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: combination count matches Binomial.
func TestCombinationCountProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%8) + 1
		k := int(kRaw) % (n + 1)
		count := 0
		Combinations(n, k, func([]int) { count++ })
		return count == Binomial(n, k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
