package guardband

import (
	"math"
	"testing"

	"voltnoise/internal/core"
)

func monotoneTable() MarginTable {
	return MarginTable{MarginPercent: [core.NumCores + 1]float64{0.5, 2, 3, 4, 5, 6, 7}}
}

func TestMarginTableValidate(t *testing.T) {
	if err := monotoneTable().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := monotoneTable()
	bad.MarginPercent[3] = 1
	if err := bad.Validate(); err == nil {
		t.Error("non-monotone table validated")
	}
	neg := monotoneTable()
	neg.MarginPercent[0] = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative idle margin validated")
	}
}

func TestFromDroops(t *testing.T) {
	droops := [core.NumCores + 1]float64{0.2, 1, 2.5, 2.0, 4, 5, 6.5}
	tab, err := FromDroops(droops, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatalf("FromDroops produced invalid table: %v", err)
	}
	// Running maximum smooths the dip at index 3.
	if tab.MarginPercent[3] != 3.5 {
		t.Errorf("margin[3] = %g, want 3.5 (running max 2.5 + safety 1)", tab.MarginPercent[3])
	}
	if tab.MarginPercent[6] != 7.5 {
		t.Errorf("margin[6] = %g", tab.MarginPercent[6])
	}
	if _, err := FromDroops(droops, -1); err == nil {
		t.Error("negative safety accepted")
	}
	droops[2] = -1
	if _, err := FromDroops(droops, 1); err == nil {
		t.Error("negative droop accepted")
	}
}

func TestControllerBias(t *testing.T) {
	c, err := NewController(monotoneTable())
	if err != nil {
		t.Fatal(err)
	}
	// Full utilization: no head-room, bias 1.0.
	b, err := c.SetActiveCores(core.NumCores)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-1.0) > 1e-12 {
		t.Errorf("full-load bias = %g", b)
	}
	// Idle: full head-room (7% - 0.5% = 6.5%).
	b, _ = c.SetActiveCores(0)
	if math.Abs(b-0.935) > 1e-12 {
		t.Errorf("idle bias = %g, want 0.935", b)
	}
	if c.ActiveCores() != 0 {
		t.Errorf("active cores = %d", c.ActiveCores())
	}
	// Monotone in utilization.
	prev := 0.0
	for n := 0; n <= core.NumCores; n++ {
		b, _ := c.SetActiveCores(n)
		if b < prev {
			t.Errorf("bias not monotone at %d cores: %g < %g", n, b, prev)
		}
		prev = b
	}
	if _, err := c.SetActiveCores(-1); err == nil {
		t.Error("negative core count accepted")
	}
	if _, err := c.SetActiveCores(core.NumCores + 1); err == nil {
		t.Error("overlarge core count accepted")
	}
}

func TestNewControllerRejectsBadTable(t *testing.T) {
	bad := monotoneTable()
	bad.MarginPercent[1] = 0
	if _, err := NewController(bad); err == nil {
		t.Error("bad table accepted")
	}
}

func TestReplaySavings(t *testing.T) {
	c, _ := NewController(monotoneTable())
	trace := []UtilizationPhase{
		{ActiveCores: 6, Duration: 1},
		{ActiveCores: 2, Duration: 2},
		{ActiveCores: 0, Duration: 1},
	}
	s, err := Replay(c, trace)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalTime != 4 {
		t.Errorf("total time = %g", s.TotalTime)
	}
	if s.MeanBias >= 1 || s.MeanBias <= 0.9 {
		t.Errorf("mean bias = %g", s.MeanBias)
	}
	if s.EnergySavedPercent <= 0 || s.EnergySavedPercent >= 20 {
		t.Errorf("energy saved = %g%%", s.EnergySavedPercent)
	}
	// A fully loaded machine saves nothing.
	s2, err := Replay(c, []UtilizationPhase{{ActiveCores: 6, Duration: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.EnergySavedPercent) > 1e-9 {
		t.Errorf("full-load savings = %g%%", s2.EnergySavedPercent)
	}
	// Lower utilization saves more.
	s3, _ := Replay(c, []UtilizationPhase{{ActiveCores: 1, Duration: 5}})
	if s3.EnergySavedPercent <= s.EnergySavedPercent {
		t.Errorf("low-utilization savings %g%% not above mixed %g%%", s3.EnergySavedPercent, s.EnergySavedPercent)
	}
}

func TestReplayValidation(t *testing.T) {
	c, _ := NewController(monotoneTable())
	if _, err := Replay(c, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := Replay(c, []UtilizationPhase{{ActiveCores: 2, Duration: 0}}); err == nil {
		t.Error("zero-duration phase accepted")
	}
	if _, err := Replay(c, []UtilizationPhase{{ActiveCores: 9, Duration: 1}}); err == nil {
		t.Error("bad utilization accepted")
	}
}
