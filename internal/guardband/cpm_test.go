package guardband

import (
	"math"
	"testing"
)

func TestCPMConfigValidation(t *testing.T) {
	if err := DefaultCPMConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(CPMConfig) CPMConfig{
		"zero headroom": func(c CPMConfig) CPMConfig { c.TargetHeadroom = 0; return c },
		"zero failv":    func(c CPMConfig) CPMConfig { c.FailVoltage = 0; return c },
		"zero step":     func(c CPMConfig) CPMConfig { c.Step = 0; return c },
		"bad min bias":  func(c CPMConfig) CPMConfig { c.MinBias = 1.2; return c },
	}
	for name, mutate := range cases {
		if err := mutate(DefaultCPMConfig()).Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
		if _, err := NewCPMController(mutate(DefaultCPMConfig())); err == nil {
			t.Errorf("%s: controller built", name)
		}
	}
}

// A synthetic plant: the deeper the undervolt, the deeper the droop.
// min voltage = bias*vnom - droop (droop grows as 1/bias).
func plant(bias float64) float64 {
	const vnom, droop0 = 1.05, 0.10
	return bias*vnom - droop0/bias
}

func TestCPMConvergesToTargetHeadroom(t *testing.T) {
	c, err := NewCPMController(DefaultCPMConfig())
	if err != nil {
		t.Fatal(err)
	}
	bias := c.Bias()
	for i := 0; i < 100 && !c.Settled(); i++ {
		bias = c.Observe(plant(bias))
	}
	if !c.Settled() {
		t.Fatal("loop did not settle")
	}
	headroom := plant(bias) - DefaultCPMConfig().FailVoltage
	target := DefaultCPMConfig().TargetHeadroom
	if headroom < target || headroom > target+3*DefaultCPMConfig().Step {
		t.Errorf("settled headroom %g, want near target %g", headroom, target)
	}
	if bias >= 1.0 {
		t.Errorf("no undervolting achieved: bias %g", bias)
	}
}

func TestCPMSnapsBackOnViolation(t *testing.T) {
	c, _ := NewCPMController(DefaultCPMConfig())
	// Converge first.
	bias := c.Bias()
	for i := 0; i < 100 && !c.Settled(); i++ {
		bias = c.Observe(plant(bias))
	}
	before := c.Bias()
	trips := c.Trips()
	// A sudden deep droop (noisy workload arrives).
	after := c.Observe(DefaultCPMConfig().FailVoltage + 0.001)
	if after <= before {
		t.Errorf("bias did not rise on violation: %g -> %g", before, after)
	}
	if c.Trips() != trips+1 {
		t.Errorf("trip not counted")
	}
}

func TestCPMRespectsBounds(t *testing.T) {
	cfg := DefaultCPMConfig()
	cfg.MinBias = 0.97
	c, _ := NewCPMController(cfg)
	// Permanently huge headroom: the loop must stop at MinBias.
	for i := 0; i < 50; i++ {
		c.Observe(1.05)
	}
	if c.Bias() < cfg.MinBias-1e-12 {
		t.Errorf("bias %g below MinBias %g", c.Bias(), cfg.MinBias)
	}
	if !c.Settled() {
		t.Error("loop at MinBias should report settled")
	}
	// Permanently violated: the loop must cap at 1.0.
	c2, _ := NewCPMController(cfg)
	for i := 0; i < 10; i++ {
		c2.Observe(0.5)
	}
	if c2.Bias() > 1.0 {
		t.Errorf("bias %g above nominal", c2.Bias())
	}
}

func TestCPMHysteresisHolds(t *testing.T) {
	cfg := DefaultCPMConfig()
	c, _ := NewCPMController(cfg)
	// Exactly inside the band: no change.
	v := cfg.FailVoltage + cfg.TargetHeadroom + cfg.Step
	before := c.Bias()
	c.Observe(v)
	if math.Abs(c.Bias()-before) > 1e-12 {
		t.Errorf("bias moved inside hysteresis band: %g -> %g", before, c.Bias())
	}
}
