package guardband

import (
	"fmt"
)

// CPMController is a critical-path-monitor style closed-loop
// guard-band controller, modelled after the POWER7 adaptive
// energy-management loop the paper references ([11], [12], [29]):
// on-chip monitors sense the actual timing headroom each control
// interval, and the setpoint is trimmed down while headroom exceeds
// the target and raised immediately when it dips below. The paper
// positions its utilization-based table as a complement that bounds
// the dynamic range such a loop actuates over.
type CPMController struct {
	cfg     CPMConfig
	bias    float64
	trips   int
	settled int
}

// CPMConfig parameterizes the closed loop.
type CPMConfig struct {
	// TargetHeadroom is the desired gap, in volts, between the deepest
	// observed droop and the failure threshold.
	TargetHeadroom float64
	// FailVoltage is the critical-path failure threshold in volts.
	FailVoltage float64
	// Step is the per-interval bias adjustment (the service element's
	// 0.5% granularity by default).
	Step float64
	// MinBias bounds how far the loop may undervolt.
	MinBias float64
}

// DefaultCPMConfig returns a conservative loop configuration.
func DefaultCPMConfig() CPMConfig {
	return CPMConfig{
		TargetHeadroom: 0.02,
		FailVoltage:    0.875,
		Step:           0.005,
		MinBias:        0.80,
	}
}

// Validate reports whether the configuration is usable.
func (c CPMConfig) Validate() error {
	switch {
	case c.TargetHeadroom <= 0:
		return fmt.Errorf("guardband: non-positive CPM headroom %g", c.TargetHeadroom)
	case c.FailVoltage <= 0:
		return fmt.Errorf("guardband: non-positive fail voltage %g", c.FailVoltage)
	case c.Step <= 0:
		return fmt.Errorf("guardband: non-positive step %g", c.Step)
	case c.MinBias <= 0 || c.MinBias >= 1:
		return fmt.Errorf("guardband: min bias %g outside (0,1)", c.MinBias)
	}
	return nil
}

// NewCPMController builds the controller at nominal bias.
func NewCPMController(cfg CPMConfig) (*CPMController, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CPMController{cfg: cfg, bias: 1.0}, nil
}

// Bias returns the current setpoint bias.
func (c *CPMController) Bias() float64 { return c.bias }

// Trips returns how many intervals violated the headroom target and
// forced the voltage back up — the loop's safety events.
func (c *CPMController) Trips() int { return c.trips }

// Settled reports whether the loop has converged: the last observation
// left the bias unchanged.
func (c *CPMController) Settled() bool { return c.settled >= 2 }

// Observe feeds one control interval's deepest droop (in volts, as the
// platform's sensors report it) and returns the bias for the next
// interval. Undervolting proceeds one step at a time; a headroom
// violation snaps back one step immediately (the asymmetric response
// of real CPM loops).
func (c *CPMController) Observe(minVoltage float64) float64 {
	headroom := minVoltage - c.cfg.FailVoltage
	switch {
	case headroom < c.cfg.TargetHeadroom:
		// Too close to failure: back off immediately.
		c.bias += c.cfg.Step
		if c.bias > 1.0 {
			c.bias = 1.0
		}
		c.trips++
		c.settled = 0
	case headroom > c.cfg.TargetHeadroom+c.cfg.Step*1.5:
		// Comfortable margin: trim one step, bounded below.
		if c.bias-c.cfg.Step >= c.cfg.MinBias {
			c.bias -= c.cfg.Step
			c.settled = 0
		} else {
			c.settled++
		}
	default:
		// Within the hysteresis band: hold.
		c.settled++
	}
	return c.bias
}
