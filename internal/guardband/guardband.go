// Package guardband implements the paper's utilization-based dynamic
// voltage guard-banding concept (Section VII-B): the worst-case noise
// — and therefore the voltage margin that must be provisioned — is
// bounded by how many cores can be executing work. A controller that
// tracks core utilization can therefore run the chip at a lower
// setpoint whenever the machine is not fully loaded, recovering the
// margin head-room without risking reliability.
package guardband

import (
	"fmt"

	"voltnoise/internal/core"
)

// MarginTable maps the number of runnable cores to the voltage margin
// (percent of nominal) that must be provisioned for worst-case noise
// at that utilization. Entry 0 is the idle margin.
type MarginTable struct {
	// MarginPercent[n] is the required margin with n active cores.
	MarginPercent [core.NumCores + 1]float64
}

// Validate checks the table is monotone: allowing more cores can never
// reduce the worst-case noise, so margins must be non-decreasing.
func (t MarginTable) Validate() error {
	for i := 1; i < len(t.MarginPercent); i++ {
		if t.MarginPercent[i] < t.MarginPercent[i-1] {
			return fmt.Errorf("guardband: margin[%d]=%g%% below margin[%d]=%g%%",
				i, t.MarginPercent[i], i-1, t.MarginPercent[i-1])
		}
	}
	if t.MarginPercent[0] < 0 {
		return fmt.Errorf("guardband: negative idle margin")
	}
	return nil
}

// FromDroops builds a margin table from measured worst-case droop
// fractions per active-core count (e.g. a noise mapping study):
// margin = worst droop percentage plus the given safety percentage.
// Droop entries must cover 0..NumCores; the table is made monotone by
// running maximum.
func FromDroops(worstDroopPercent [core.NumCores + 1]float64, safetyPercent float64) (MarginTable, error) {
	if safetyPercent < 0 {
		return MarginTable{}, fmt.Errorf("guardband: negative safety %g", safetyPercent)
	}
	var t MarginTable
	runMax := 0.0
	for i, d := range worstDroopPercent {
		if d < 0 {
			return MarginTable{}, fmt.Errorf("guardband: negative droop at %d cores", i)
		}
		if d > runMax {
			runMax = d
		}
		t.MarginPercent[i] = runMax + safetyPercent
	}
	return t, nil
}

// Controller adjusts the supply setpoint from core-utilization events.
type Controller struct {
	table  MarginTable
	active int
}

// NewController builds a controller; the table must validate.
func NewController(table MarginTable) (*Controller, error) {
	if err := table.Validate(); err != nil {
		return nil, err
	}
	return &Controller{table: table}, nil
}

// SetActiveCores informs the controller that n cores may execute
// work. It returns the new supply bias: when a core is about to be
// woken the caller must raise the voltage *before* dispatching work to
// it; when a core is released the voltage may be lowered afterwards —
// the ordering the paper describes.
func (c *Controller) SetActiveCores(n int) (bias float64, err error) {
	if n < 0 || n > core.NumCores {
		return 0, fmt.Errorf("guardband: %d active cores", n)
	}
	c.active = n
	return c.Bias(), nil
}

// ActiveCores returns the current utilization the controller assumes.
func (c *Controller) ActiveCores() int { return c.active }

// Bias returns the current setpoint as a bias multiplier: nominal
// voltage scaled down by the margin head-room that full utilization
// would need but the current utilization does not.
func (c *Controller) Bias() float64 {
	full := c.table.MarginPercent[core.NumCores]
	need := c.table.MarginPercent[c.active]
	return 1 - (full-need)/100
}

// UtilizationPhase is one segment of a utilization trace.
type UtilizationPhase struct {
	// ActiveCores is the utilization during the phase.
	ActiveCores int
	// Duration is the phase length in seconds.
	Duration float64
}

// Savings reports the outcome of replaying a utilization trace.
type Savings struct {
	// MeanBias is the time-weighted average setpoint.
	MeanBias float64
	// EnergySavedPercent estimates the dynamic-energy saving relative
	// to a static worst-case setpoint, using the CV^2 scaling of
	// dynamic power (energy ∝ V^2 at fixed work).
	EnergySavedPercent float64
	// TotalTime is the trace duration.
	TotalTime float64
}

// Replay runs the controller over a utilization trace and reports the
// achievable savings versus a static worst-case guard-band.
func Replay(c *Controller, trace []UtilizationPhase) (Savings, error) {
	if len(trace) == 0 {
		return Savings{}, fmt.Errorf("guardband: empty utilization trace")
	}
	var s Savings
	var biasTime, energyRel float64
	for _, ph := range trace {
		if ph.Duration <= 0 {
			return Savings{}, fmt.Errorf("guardband: non-positive phase duration %g", ph.Duration)
		}
		bias, err := c.SetActiveCores(ph.ActiveCores)
		if err != nil {
			return Savings{}, err
		}
		biasTime += bias * ph.Duration
		energyRel += bias * bias * ph.Duration
		s.TotalTime += ph.Duration
	}
	s.MeanBias = biasTime / s.TotalTime
	// Static guard-band runs at bias 1.0 the whole time.
	s.EnergySavedPercent = (1 - energyRel/s.TotalTime) * 100
	return s, nil
}
