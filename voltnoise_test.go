// Integration tests of the public API: everything a downstream user
// touches, exercised end to end against the paper's headline results.
package voltnoise_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"voltnoise"
)

var (
	apiOnce sync.Once
	apiLab  *voltnoise.Lab
	apiErr  error
)

func apiSetup(t *testing.T) *voltnoise.Lab {
	t.Helper()
	apiOnce.Do(func() {
		var plat *voltnoise.Platform
		plat, apiErr = voltnoise.NewPlatform(voltnoise.DefaultPlatformConfig())
		if apiErr != nil {
			return
		}
		apiLab, apiErr = voltnoise.NewLab(plat, voltnoise.WithSearch(voltnoise.QuickSearchConfig()))
	})
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	return apiLab
}

func TestISATableExposed(t *testing.T) {
	tab := voltnoise.ISATable()
	if tab.Size() != 1301 {
		t.Errorf("ISA size = %d", tab.Size())
	}
	if _, ok := tab.Lookup("CIB"); !ok {
		t.Error("CIB missing")
	}
}

func TestSearchAPI(t *testing.T) {
	res, err := voltnoise.FindMaxPowerSequence(voltnoise.QuickSearchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.BestPower < 40 {
		t.Errorf("search result %v / %g W", res.Best, res.BestPower)
	}
	min := voltnoise.MinPowerSequence(voltnoise.QuickSearchConfig())
	if min.Body[0].Mnemonic != "SRNM" {
		t.Errorf("min sequence = %s", min.Mnemonics())
	}
}

// TestHeadlineReproduction checks the paper's headline numbers through
// the public API: ~41 %p2p unsynchronized and ~61 %p2p synchronized at
// the ~2 MHz first-droop resonance, worst on cores 2/4.
func TestHeadlineReproduction(t *testing.T) {
	lab := apiSetup(t)
	sync, err := lab.FrequencySweep(context.Background(), []float64{2e6}, true, 1000)
	if err != nil {
		t.Fatal(err)
	}
	unsync, err := lab.FrequencySweep(context.Background(), []float64{2e6}, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w := unsync[0].Worst(); w < 33 || w > 52 {
		t.Errorf("unsync worst = %g, want ~41-44", w)
	}
	if w := sync[0].Worst(); w < 55 || w > 75 {
		t.Errorf("sync worst = %g, want ~61-67", w)
	}
	ratio := sync[0].Worst() / unsync[0].Worst()
	if ratio < 1.2 || ratio > 2.0 {
		t.Errorf("sync/unsync ratio %g, paper ~1.5", ratio)
	}
}

func TestEPIProfileAPI(t *testing.T) {
	// Default measurement windows: short ones bias the bottom ranks,
	// where unpipelined ops need several initiation intervals to
	// average out.
	prof, err := voltnoise.EPIProfile(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Rank("CIB") != 1 {
		t.Errorf("CIB rank = %d", prof.Rank("CIB"))
	}
	if prof.Rank("SRNM") != 1301 {
		t.Errorf("SRNM rank = %d", prof.Rank("SRNM"))
	}
}

func TestVminAPI(t *testing.T) {
	lab := apiSetup(t)
	cfg := voltnoise.DefaultVminConfig()
	cfg.MinBias = 0.95
	var wl [voltnoise.NumCores]voltnoise.Workload
	res, err := voltnoise.RunVmin(lab.Platform, wl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Error("idle platform failed above bias 0.95")
	}
	if math.Abs(res.MarginPercent-5) > 1e-9 {
		t.Errorf("idle margin %g, want the full 5%%", res.MarginPercent)
	}
}

func TestGuardbandAPI(t *testing.T) {
	table, err := voltnoise.GuardbandFromDroops(
		[voltnoise.NumCores + 1]float64{1, 2, 3, 4, 5, 6, 7}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := voltnoise.NewGuardbandController(table)
	if err != nil {
		t.Fatal(err)
	}
	s, err := voltnoise.ReplayGuardband(ctrl, []voltnoise.UtilizationPhase{
		{ActiveCores: 2, Duration: 10},
		{ActiveCores: 6, Duration: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.EnergySavedPercent <= 0 {
		t.Errorf("no savings: %+v", s)
	}
}

func TestStressmarkSpecAPI(t *testing.T) {
	lab := apiSetup(t)
	cond := voltnoise.DefaultSync().Misalign(2)
	spec := voltnoise.StressmarkSpec{
		HighSeq:      lab.MaxSeq,
		LowSeq:       lab.MinSeq,
		StimulusFreq: 1e6,
		Duty:         0.5,
		Sync:         &cond,
		Events:       100,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := voltnoise.DefaultSync().OffsetSeconds(cond); math.Abs(got-2*voltnoise.TODTickSeconds) > 1e-15 {
		t.Errorf("misalign offset %g", got)
	}
}

func TestLogSpaceAndPeaks(t *testing.T) {
	f := voltnoise.LogSpace(1e3, 1e6, 4)
	if len(f) != 4 || f[0] != 1e3 {
		t.Errorf("LogSpace = %v", f)
	}
	lab := apiSetup(t)
	prof, err := lab.ImpedanceProfile(voltnoise.LogSpace(1e3, 100e6, 200))
	if err != nil {
		t.Fatal(err)
	}
	peaks := voltnoise.ImpedancePeaks(prof)
	if len(peaks) < 2 {
		t.Fatalf("peaks = %d", len(peaks))
	}
	// Two resonant bands as in the paper's Figure 7b.
	var mid, droop bool
	for _, p := range peaks[:2] {
		if p.Freq > 15e3 && p.Freq < 80e3 {
			mid = true
		}
		if p.Freq > 1e6 && p.Freq < 5e6 {
			droop = true
		}
	}
	if !mid || !droop {
		t.Errorf("bands missing: %+v", peaks[:2])
	}
}

func TestNewAPIsSmoke(t *testing.T) {
	// PDN netlist.
	deck := voltnoise.PDNNetlist(voltnoise.DefaultPlatformConfig(), "smoke")
	if len(deck) < 100 || deck[0] != '*' {
		t.Errorf("netlist looks wrong: %q...", deck[:20])
	}
	// Job trace generation + scheduler comparison on a synthetic model.
	trace, err := voltnoise.GenerateJobTrace(30, 1, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	model := &voltnoise.PairwiseNoiseModel{}
	for i := 0; i < voltnoise.NumCores; i++ {
		model.Base[i] = 20
		for j := 0; j < voltnoise.NumCores; j++ {
			if i != j {
				model.Coupling[i][j] = 1
			}
		}
	}
	results, err := voltnoise.CompareSchedulers(
		[]voltnoise.SchedulerPolicy{voltnoise.FirstFitPolicy(), voltnoise.NoiseAwarePolicy()},
		model, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].PeakNoise <= 0 {
		t.Errorf("scheduler results: %+v", results)
	}
	// GA search.
	gcfg := voltnoise.DefaultGeneticConfig()
	gcfg.Search = voltnoise.QuickSearchConfig()
	gcfg.Population = 10
	gcfg.Generations = 3
	gcfg.Elite = 2
	ga, err := voltnoise.EvolveMaxPowerSequence(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ga.BestPower < 30 {
		t.Errorf("GA best %g W", ga.BestPower)
	}
	// Dither + cycle-accurate workloads.
	lab := apiSetup(t)
	spec := lab.MaxSpec(2e6)
	cond := voltnoise.DefaultSync()
	spec.Sync = &cond
	spec.Events = 50
	cfg := voltnoise.DefaultPlatformConfig()
	if _, err := voltnoise.DitherWorkloads(spec, cfg.Core, 1e-6, 5); err != nil {
		t.Fatal(err)
	}
	free := lab.MaxSpec(1e6)
	if _, err := voltnoise.CycleAccurateWorkload(free, cfg.Core, cfg.Dt); err != nil {
		t.Fatal(err)
	}
}
