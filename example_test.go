package voltnoise_test

import (
	"fmt"

	"voltnoise"
)

// The synthetic ISA mirrors the zEC12's instruction count and the
// paper's Table I pins.
func ExampleISATable() {
	tab := voltnoise.ISATable()
	cib := tab.MustLookup("CIB")
	fmt.Println(tab.Size(), "instructions")
	fmt.Println(cib.Mnemonic, cib.Desc)
	// Output:
	// 1301 instructions
	// CIB Compare immediate and branch (32<8)
}

// TOD sync conditions express deterministic multi-core alignment in
// 62.5 ns quanta; misalignment programs exact offsets.
func ExampleDefaultSync() {
	cond := voltnoise.DefaultSync()
	shifted := cond.Misalign(2)
	fmt.Printf("period %.3f ms\n", cond.Period()*1e3)
	fmt.Printf("offset %.1f ns\n", cond.OffsetSeconds(shifted)*1e9)
	// Output:
	// period 4.096 ms
	// offset 125.0 ns
}

// The minimum-power sequence is the EPI rank's bottom instruction: a
// long-latency serializing operation, not a NOP.
func ExampleMinPowerSequence() {
	seq := voltnoise.MinPowerSequence(voltnoise.DefaultSearchConfig())
	fmt.Println(seq.Mnemonics())
	// Output:
	// SRNM
}

// Guard-band margin tables translate utilization into a setpoint: the
// fewer cores that can execute, the lower the safe supply.
func ExampleNewGuardbandController() {
	table, _ := voltnoise.GuardbandFromDroops(
		[voltnoise.NumCores + 1]float64{1, 3, 5, 7, 9, 11, 13}, 1)
	ctrl, _ := voltnoise.NewGuardbandController(table)
	for _, n := range []int{0, 3, 6} {
		bias, _ := ctrl.SetActiveCores(n)
		fmt.Printf("%d cores -> bias %.2f\n", n, bias)
	}
	// Output:
	// 0 cores -> bias 0.88
	// 3 cores -> bias 0.94
	// 6 cores -> bias 1.00
}
