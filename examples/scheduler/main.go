// Noise-aware scheduling end to end: fit a pairwise inter-core noise
// model from live platform measurements (singles and pairs of
// synchronized stressmarks), then replay a bursty job trace under
// first-fit, round-robin and the noise-aware policy, comparing the
// worst-case noise each exposes — the paper's §VII-A "task mapping
// policy with the objective of minimizing the worst-case noise" made
// runnable.
package main

import (
	"context"
	"fmt"
	"log"

	"voltnoise"
)

func main() {
	ctx := context.Background()
	plat, err := voltnoise.NewPlatform(voltnoise.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}
	lab, err := voltnoise.NewLab(plat, voltnoise.WithSearch(voltnoise.QuickSearchConfig()))
	if err != nil {
		log.Fatal(err)
	}

	// Fit the pairwise model from 6 single-core and 15 pair
	// measurements of the synchronized max stressmark. The model is
	// fitted on droop depth (in % of nominal), which is continuous —
	// unlike the tap-quantized skitter %p2p readings — so the small
	// cluster couplings survive the fit.
	fmt.Println("fitting the pairwise noise model from platform measurements (21 runs)...")
	spec := lab.MaxSpec(2e6)
	cond := voltnoise.DefaultSync()
	spec.Sync = &cond
	spec.Events = 100
	proto, err := spec.Workload(plat.Config().Core, voltnoise.ISATable())
	if err != nil {
		log.Fatal(err)
	}
	vnom := plat.NominalVoltage()
	// Each of the 21 fit measurements draws a pooled session, so the
	// circuit build and factorization are paid once, not per run.
	pool := plat.Sessions()
	model, err := voltnoise.FitPairwiseNoiseModel(func(cores []int) (float64, error) {
		var wl [voltnoise.NumCores]voltnoise.Workload
		for _, c := range cores {
			wl[c] = proto
		}
		s, err := pool.Get(plat.VoltageBias())
		if err != nil {
			return 0, err
		}
		defer pool.Put(s)
		m, err := s.RunContext(ctx, voltnoise.RunSpec{Workloads: wl, Start: -10e-6, Duration: 70e-6})
		if err != nil {
			return 0, err
		}
		return (vnom - m.MinVoltage()) / vnom * 100, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  single-core droop: %.2f-%.2f %% of nominal\n", minOf(model.Base[:]), maxOf(model.Base[:]))
	fmt.Printf("  coupling core0<->core2 (same cluster): +%.2f; core0<->core1 (opposite): +%.2f\n",
		model.Coupling[0][2], model.Coupling[0][1])

	// A bursty trace: a three-job batch, drain, then four interactive
	// jobs.
	trace := []voltnoise.SchedulerEvent{
		{Time: 0, Arrive: true, Job: 1},
		{Time: 1, Arrive: true, Job: 2},
		{Time: 2, Arrive: true, Job: 3},
		{Time: 10, Arrive: false, Job: 1},
		{Time: 10, Arrive: false, Job: 2},
		{Time: 10, Arrive: false, Job: 3},
		{Time: 11, Arrive: true, Job: 4},
		{Time: 12, Arrive: true, Job: 5},
		{Time: 13, Arrive: true, Job: 6},
		{Time: 14, Arrive: true, Job: 7},
		{Time: 25, Arrive: false, Job: 4},
		{Time: 25, Arrive: false, Job: 5},
		{Time: 25, Arrive: false, Job: 6},
		{Time: 25, Arrive: false, Job: 7},
	}
	results, err := voltnoise.CompareSchedulers(
		[]voltnoise.SchedulerPolicy{
			voltnoise.FirstFitPolicy(),
			voltnoise.RoundRobinPolicy(),
			voltnoise.NoiseAwarePolicy(),
		}, model, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npolicy comparison over the job trace (worst-case droop, % of nominal):")
	fmt.Println("  policy        peak droop  mean droop")
	for _, r := range results {
		fmt.Printf("  %-12s %10.2f %11.2f\n", r.Policy, r.PeakNoise, r.MeanNoise)
	}
	fmt.Println("\n(the noise-aware policy spreads jobs across the two on-die voltage")
	fmt.Println(" domains and avoids flanking a core with two noisy row neighbours;")
	fmt.Println(" as the paper itself concludes, the gains are small on a six-core chip")
	fmt.Println(" and grow with core count and process variation)")
}

func minOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
