// Utilization-based dynamic guard-banding: the paper's Section VII-B.
// Measure the worst-case droop as a function of how many cores are
// active, build a margin table from it, and replay a bursty day-long
// utilization trace through the controller to estimate the dynamic
// energy the recovered margin buys.
package main

import (
	"context"
	"fmt"
	"log"

	"voltnoise"
)

func main() {
	ctx := context.Background()
	plat, err := voltnoise.NewPlatform(voltnoise.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}
	lab, err := voltnoise.NewLab(plat, voltnoise.WithSearch(voltnoise.QuickSearchConfig()))
	if err != nil {
		log.Fatal(err)
	}

	// Worst-case droop per active-core count, from the mapping study
	// (the data behind the paper's Figure 11a regions).
	runs, err := lab.MappingStudy(ctx, 2e6, 100, false)
	if err != nil {
		log.Fatal(err)
	}
	var worstDroop [voltnoise.NumCores + 1]float64
	vnom := plat.NominalVoltage()
	for _, r := range runs {
		n := r.ActiveCores()
		if d := (vnom - r.MinVoltage) / vnom * 100; d > worstDroop[n] {
			worstDroop[n] = d
		}
	}
	table, err := voltnoise.GuardbandFromDroops(worstDroop, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := voltnoise.NewGuardbandController(table)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("margin table (worst-case droop + 1% safety, by active cores):")
	fmt.Println("  cores   margin%    setpoint bias")
	for n := 0; n <= voltnoise.NumCores; n++ {
		bias, _ := ctrl.SetActiveCores(n)
		fmt.Printf("  %5d   %7.2f    %12.3f\n", n, table.MarginPercent[n], bias)
	}

	// A bursty 24h utilization profile: overnight batch on one core,
	// office hours on three, a four-hour peak on all six, evening load
	// on two.
	trace := []voltnoise.UtilizationPhase{
		{ActiveCores: 1, Duration: 6 * 3600},
		{ActiveCores: 3, Duration: 8 * 3600},
		{ActiveCores: 6, Duration: 4 * 3600},
		{ActiveCores: 2, Duration: 6 * 3600},
	}
	s, err := voltnoise.ReplayGuardband(ctrl, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n24h utilization replay:")
	fmt.Printf("  mean setpoint bias:   %.3f\n", s.MeanBias)
	fmt.Printf("  dynamic energy saved: %.1f%% vs a static worst-case guard-band\n", s.EnergySavedPercent)
	fmt.Println("  (the voltage rises BEFORE a core wakes and drops only after one idles,")
	fmt.Println("   so the provisioned margin always covers the worst case for the active set)")
}
