// Quickstart: build the simulated platform, generate the worst-case
// dI/dt stressmark with the paper's search pipeline, run it
// synchronized on all six cores, and read the per-core skitter noise
// sensors — the core loop of the paper's methodology in ~30 lines.
package main

import (
	"context"
	"fmt"
	"log"

	"voltnoise"
)

func main() {
	ctx := context.Background()
	plat, err := voltnoise.NewPlatform(voltnoise.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The lab runs the maximum-power sequence search (candidate
	// selection -> combinations -> uarch filter -> IPC filter -> power
	// evaluation) and derives the min/medium power sequences.
	// QuickSearchConfig explores a reduced design space in
	// milliseconds; swap in DefaultSearchConfig for the paper-sized
	// 9^6 search.
	lab, err := voltnoise.NewLab(plat, voltnoise.WithSearch(voltnoise.QuickSearchConfig()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max-power sequence: %s (%.1f W/core)\n",
		lab.MaxSeq.Mnemonics(), lab.Search.Core.Power(lab.MaxSeq))
	fmt.Printf("min-power sequence: %s (%.1f W/core)\n",
		lab.MinSeq.Mnemonics(), lab.Search.Core.Power(lab.MinSeq))

	// Run the stressmark at the first-droop resonance (~2 MHz),
	// TOD-synchronized across all cores (the worst case), and
	// unsynchronized for comparison.
	sync, err := lab.FrequencySweep(ctx, []float64{2e6}, true, 1000)
	if err != nil {
		log.Fatal(err)
	}
	unsync, err := lab.FrequencySweep(ctx, []float64{2e6}, false, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nper-core skitter readings at 2 MHz (%%p2p):\n")
	fmt.Println("core      synchronized   unsynchronized")
	for i := 0; i < voltnoise.NumCores; i++ {
		fmt.Printf("core%d     %12.1f   %14.1f\n", i, sync[0].P2P[i], unsync[0].P2P[i])
	}
	fmt.Printf("\nworst case: %.1f %%p2p synchronized vs %.1f unsynchronized\n",
		sync[0].Worst(), unsync[0].Worst())
	fmt.Println("(the paper reports ~61% vs ~41% on the zEC12)")
}
