// Noise-aware workload mapping: the paper's Section VII-A. Schedule
// three worst-case stressmarks on the six-core chip, enumerate all 20
// placements, and show that placements concentrated in one layout
// cluster are noisier than placements spread across the two on-die
// voltage domains — headroom a noise-aware scheduler can reclaim.
package main

import (
	"context"
	"fmt"
	"log"

	"voltnoise"
)

func main() {
	ctx := context.Background()
	plat, err := voltnoise.NewPlatform(voltnoise.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}
	lab, err := voltnoise.NewLab(plat, voltnoise.WithSearch(voltnoise.QuickSearchConfig()))
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 14 experiment: three synchronized max stressmarks.
	ops, err := lab.MappingOpportunity(ctx, 2e6, 100, []int{3})
	if err != nil {
		log.Fatal(err)
	}
	op := ops[0]
	fmt.Println("three worst-case dI/dt stressmarks on six cores, all 20 placements measured:")
	fmt.Printf("  best placement:  cores %v -> worst-case %.1f %%p2p (on core %d)\n",
		op.Best.Cores, op.Best.WorstP2P, op.Best.WorstCore)
	fmt.Printf("  worst placement: cores %v -> worst-case %.1f %%p2p (on core %d)\n",
		op.Worst.Cores, op.Worst.WorstP2P, op.Worst.WorstCore)
	fmt.Printf("  noise-aware mapping gain: %.1f %%p2p points\n", op.GainP2P)
	fmt.Printf("  (the paper measured 24.6 vs 28.2 %%p2p for spread vs same-cluster placements)\n")

	// The Figure 15 study: the opportunity across workload counts.
	fmt.Println("\nmapping opportunity by workload count (Figure 15):")
	all, err := lab.MappingOpportunity(ctx, 2e6, 100, []int{1, 2, 3, 4, 5, 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  workloads   best    worst    gain")
	for _, o := range all {
		fmt.Printf("  %9d  %5.1f   %5.1f   %5.1f\n",
			o.Workloads, o.Best.WorstP2P, o.Worst.WorstP2P, o.GainP2P)
	}
	fmt.Println("  (gains peak at 2-4 workloads: too few cannot collide, too many leave no choice)")
}
