// Resonance discovery: the paper's Section V-A workflow. Sweep the
// dI/dt stressmark's stimulus frequency across five decades, read the
// noise sensors, locate the PDN's resonant bands, and cross-check them
// against the AC impedance profile (the package-characterization view
// of the same physics).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"voltnoise"
)

func main() {
	ctx := context.Background()
	plat, err := voltnoise.NewPlatform(voltnoise.DefaultPlatformConfig())
	if err != nil {
		log.Fatal(err)
	}
	lab, err := voltnoise.NewLab(plat, voltnoise.WithSearch(voltnoise.QuickSearchConfig()))
	if err != nil {
		log.Fatal(err)
	}

	freqs := voltnoise.LogSpace(1e3, 20e6, 25)
	sweep, err := lab.FrequencySweep(ctx, freqs, false, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("noise vs stimulus frequency (unsynchronized, one copy per core):")
	maxNoise := 0.0
	for _, p := range sweep {
		if p.Worst() > maxNoise {
			maxNoise = p.Worst()
		}
	}
	var worstFreq float64
	for _, p := range sweep {
		bar := strings.Repeat("#", int(p.Worst()/maxNoise*40))
		fmt.Printf("%10.3gHz %5.1f %s\n", p.Freq, p.Worst(), bar)
		if p.Worst() == maxNoise {
			worstFreq = p.Freq
		}
	}
	fmt.Printf("\nnoisiest stimulus: %.3g Hz\n", worstFreq)

	// Cross-check with the impedance profile, as the paper does with
	// its Figure 7b.
	prof, err := lab.ImpedanceProfile(voltnoise.LogSpace(1e3, 100e6, 300))
	if err != nil {
		log.Fatal(err)
	}
	peaks := voltnoise.ImpedancePeaks(prof)
	fmt.Println("\nimpedance-profile peaks (the same bands, seen electrically):")
	for i, p := range peaks {
		if i >= 2 {
			break
		}
		fmt.Printf("  %.3g Hz: %.3f mOhm\n", p.Freq, p.Mag()*1e3)
	}
	fmt.Println("\nthe noise peak and the first-droop impedance peak coincide:")
	fmt.Printf("  noise band %.3g Hz vs impedance band %.3g Hz\n", worstFreq, peaks[0].Freq)
}
